package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/forecast"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// AblationRow is one design-choice variant and the leaf-level peak
// reduction it achieves on the held-out week.
type AblationRow struct {
	// Variant names the design choice under test.
	Variant string
	// RPPReductionPct is the leaf-level peak reduction vs. the DC's
	// oblivious baseline.
	RPPReductionPct float64
}

// variantSpec names one placer variant for runVariants.
type variantSpec struct {
	label  string
	placer placement.WorkloadAware
	weeks  int
}

// runVariants evaluates placer variants side by side, in input order.
func runVariants(name workload.DCName, opt Options, specs []variantSpec) ([]AblationRow, error) {
	return parallel.Map(context.Background(), len(specs), opt.Workers, func(i int) (AblationRow, error) {
		return runVariant(name, opt, specs[i].label, specs[i].placer, specs[i].weeks)
	})
}

// runVariant evaluates one placer variant on a fresh DC instance.
func runVariant(name workload.DCName, opt Options, variant string, placer placement.WorkloadAware, trainWeeks int) (AblationRow, error) {
	opt = opt.withDefaults()
	if placer.Workers == 0 {
		placer.Workers = opt.Workers
	}
	run, err := Setup(name, opt)
	if err != nil {
		return AblationRow{}, err
	}
	// core.Optimize always uses the standard placer; for ablations we drive
	// the pipeline pieces directly with the variant placer.
	avg, err := run.Fleet.AveragedITraces(maxInt(trainWeeks, 1))
	if err != nil {
		return AblationRow{}, err
	}
	test, err := run.Fleet.SplitWeeks(maxInt(trainWeeks, 1))
	if err != nil {
		return AblationRow{}, err
	}
	instances := make([]placement.Instance, len(run.Fleet.Instances))
	for i, inst := range run.Fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
	}
	trainFn := placement.TraceFn(workload.SubPowerFn(avg))
	testFn := powertree.PowerFn(workload.SubPowerFn(test))

	baseTree := run.Tree.Clone()
	if err := (placement.Oblivious{MixFraction: run.Config.BaselineMix}).Place(baseTree, instances, trainFn); err != nil {
		return AblationRow{}, err
	}
	optTree := run.Tree.Clone()
	if err := placer.Place(optTree, instances, trainFn); err != nil {
		return AblationRow{}, err
	}
	before, err := baseTree.SumOfPeaks(powertree.RPP, testFn)
	if err != nil {
		return AblationRow{}, err
	}
	after, err := optTree.SumOfPeaks(powertree.RPP, testFn)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{Variant: variant, RPPReductionPct: 100 * (before - after) / before}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationEmbedding compares the paper's I-to-S embedding against the
// I-to-I pairwise embedding §3.4 argues against.
func AblationEmbedding(name workload.DCName, opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	return runVariants(name, opt, []variantSpec{
		{"I-to-S (paper)", placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed}, 2},
		{"I-to-I sample=32", placement.WorkloadAware{Seed: opt.Seed, IToI: true, IToISample: 32}, 2},
	})
}

// AblationClustering compares balanced k-means (paper) against plain
// k-means in the placement step.
func AblationClustering(name workload.DCName, opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	return runVariants(name, opt, []variantSpec{
		{"balanced k-means (paper)", placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed}, 2},
		{"plain k-means", placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed, PlainKMeans: true}, 2},
	})
}

// AblationBasisSize sweeps |B|, the number of S-trace bases.
func AblationBasisSize(name workload.DCName, opt Options, sizes []int) ([]AblationRow, error) {
	opt = opt.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 12}
	}
	specs := make([]variantSpec, len(sizes))
	for i, b := range sizes {
		specs[i] = variantSpec{fmt.Sprintf("|B|=%d", b), placement.WorkloadAware{TopServices: b, Seed: opt.Seed}, 2}
	}
	return runVariants(name, opt, specs)
}

// AblationBasisScope compares per-subtree S-trace extraction (paper)
// against a single global basis.
func AblationBasisScope(name workload.DCName, opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	return runVariants(name, opt, []variantSpec{
		{"per-subtree basis (paper)", placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed}, 2},
		{"global basis", placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed, GlobalBasis: true}, 2},
	})
}

// AblationTrainWeeks compares single-week training against the paper's
// multi-week averaged I-traces (the §3.3 overfitting guard).
func AblationTrainWeeks(name workload.DCName, opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	specs := make([]variantSpec, 0, 2)
	for _, weeks := range []int{1, 2} {
		specs = append(specs, variantSpec{fmt.Sprintf("train=%dwk", weeks),
			placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed}, weeks})
	}
	return runVariants(name, opt, specs)
}

// AblationRemap measures how far swap-based remapping alone (on the
// oblivious placement) closes the gap to the full placement.
func AblationRemap(name workload.DCName, opt Options, maxSwaps int) ([]AblationRow, error) {
	opt = opt.withDefaults()
	if maxSwaps <= 0 {
		maxSwaps = 64
	}
	run, err := Setup(name, opt)
	if err != nil {
		return nil, err
	}
	avg, err := run.Fleet.AveragedITraces(2)
	if err != nil {
		return nil, err
	}
	test, err := run.Fleet.SplitWeeks(2)
	if err != nil {
		return nil, err
	}
	instances := make([]placement.Instance, len(run.Fleet.Instances))
	for i, inst := range run.Fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
	}
	trainFn := placement.TraceFn(workload.SubPowerFn(avg))
	testFn := powertree.PowerFn(workload.SubPowerFn(test))

	base := run.Tree.Clone()
	if err := (placement.Oblivious{MixFraction: run.Config.BaselineMix}).Place(base, instances, trainFn); err != nil {
		return nil, err
	}
	before, err := base.SumOfPeaks(powertree.RPP, testFn)
	if err != nil {
		return nil, err
	}

	remapped := base.Clone()
	if _, err := placement.Remap(remapped, trainFn, placement.RemapConfig{MaxSwaps: maxSwaps}); err != nil {
		return nil, err
	}
	afterRemap, err := remapped.SumOfPeaks(powertree.RPP, testFn)
	if err != nil {
		return nil, err
	}

	full := run.Tree.Clone()
	if err := (placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed}).Place(full, instances, trainFn); err != nil {
		return nil, err
	}
	afterFull, err := full.SumOfPeaks(powertree.RPP, testFn)
	if err != nil {
		return nil, err
	}
	return []AblationRow{
		{Variant: fmt.Sprintf("remap-only (%d swaps)", maxSwaps), RPPReductionPct: 100 * (before - afterRemap) / before},
		{Variant: "full placement (paper)", RPPReductionPct: 100 * (before - afterFull) / before},
	}, nil
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s\n", title)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s RPP peak reduction %6.2f%%\n", r.Variant, r.RPPReductionPct)
	}
	return b.String()
}

// AblationForecast compares placing on the paper's averaged I-traces
// against placing on forecast traces (seasonal EWMA + trend) — the
// "proactive planning" knob. Both placements are evaluated on the held-out
// week.
func AblationForecast(name workload.DCName, opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	run, err := Setup(name, opt)
	if err != nil {
		return nil, err
	}
	avg, err := run.Fleet.AveragedITraces(2)
	if err != nil {
		return nil, err
	}
	weekLen := int(7 * 24 * time.Hour / run.Config.Gen.Step)
	fc := make(map[string]timeseries.Series, len(run.Fleet.Instances))
	for _, inst := range run.Fleet.Instances {
		f, err := forecast.NextWeek(inst.Trace.Slice(0, 2*weekLen), forecast.Config{Alpha: 0.5, TrendDamping: 0.5})
		if err != nil {
			return nil, err
		}
		fc[inst.ID] = f
	}
	test, err := run.Fleet.SplitWeeks(2)
	if err != nil {
		return nil, err
	}
	instances := make([]placement.Instance, len(run.Fleet.Instances))
	for i, inst := range run.Fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
	}
	testFn := powertree.PowerFn(workload.SubPowerFn(test))

	base := run.Tree.Clone()
	if err := (placement.Oblivious{MixFraction: run.Config.BaselineMix}).Place(base, instances, placement.TraceFn(workload.SubPowerFn(avg))); err != nil {
		return nil, err
	}
	before, err := base.SumOfPeaks(powertree.RPP, testFn)
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	for _, v := range []struct {
		label  string
		traces map[string]timeseries.Series
	}{
		{"averaged I-traces (paper)", avg},
		{"forecast traces", fc},
	} {
		tree := run.Tree.Clone()
		placer := placement.WorkloadAware{TopServices: opt.TopServices, Seed: opt.Seed}
		if err := placer.Place(tree, instances, placement.TraceFn(workload.SubPowerFn(v.traces))); err != nil {
			return nil, err
		}
		after, err := tree.SumOfPeaks(powertree.RPP, testFn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.label, RPPReductionPct: 100 * (before - after) / before})
	}
	return rows, nil
}

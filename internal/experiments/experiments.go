// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic datacenters. Each FigN function
// returns the data behind the corresponding figure; Format helpers render
// the same rows/series the paper reports as text tables. The cmd/experiments
// binary and the repository-level benchmarks are thin wrappers around this
// package.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/score"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// Options size the experiments. The defaults favour a single-core machine;
// raise Scale (and lower Step) for higher-fidelity runs.
type Options struct {
	// Scale multiplies per-service instance counts (default 2).
	Scale int
	// Step is the trace sampling interval (default 30 minutes).
	Step time.Duration
	// Seed fixes all randomized stages (default 1).
	Seed int64
	// TopServices is |B| (default 8).
	TopServices int
	// Workers bounds the goroutines used by the per-DC, per-ablation and
	// per-sweep-point fan-outs and by the pipeline stages underneath; 0
	// means the default (SMOOTHOP_WORKERS or GOMAXPROCS). Every experiment
	// returns identical data for any worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Step <= 0 {
		o.Step = 30 * time.Minute
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TopServices <= 0 {
		o.TopServices = 8
	}
	return o
}

// DCRun bundles everything computed for one datacenter: the fleet, the
// framework outputs, and the config that produced them.
type DCRun struct {
	Name      workload.DCName
	Config    workload.DCConfig
	Fleet     *workload.Fleet
	Tree      *powertree.Node
	Placement *core.PlacementResult
	Reshape   *core.ReshapeResult
}

// Setup instantiates one datacenter without running the pipeline.
func Setup(name workload.DCName, opt Options) (*DCRun, error) {
	opt = opt.withDefaults()
	cfg, err := workload.StandardDCConfig(name, opt.Scale)
	if err != nil {
		return nil, err
	}
	cfg.Gen.Step = opt.Step
	fleet, tree, err := workload.BuildDC(cfg)
	if err != nil {
		return nil, err
	}
	return &DCRun{Name: name, Config: cfg, Fleet: fleet, Tree: tree}, nil
}

// Run executes the full pipeline (placement + reshaping) for one DC.
func Run(name workload.DCName, opt Options) (*DCRun, error) {
	opt = opt.withDefaults()
	run, err := Setup(name, opt)
	if err != nil {
		return nil, err
	}
	fw := core.New(core.Config{
		TopServices: opt.TopServices,
		Seed:        opt.Seed,
		Baseline:    placement.Oblivious{MixFraction: run.Config.BaselineMix},
		Workers:     opt.Workers,
	})
	run.Placement, err = fw.Optimize(run.Fleet, run.Tree)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s placement: %w", name, err)
	}
	run.Reshape, err = fw.Reshape(run.Fleet, run.Placement)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s reshape: %w", name, err)
	}
	return run, nil
}

// RunAll executes the pipeline for all three datacenters, side by side.
func RunAll(opt Options) ([]*DCRun, error) {
	return RunSome(workload.AllDCs, opt)
}

// RunSome executes the pipeline for the named datacenters, side by side.
// A failure in any datacenter aborts the whole batch with an error naming
// the datacenter and pipeline stage (never a silent partial result).
func RunSome(names []workload.DCName, opt Options) ([]*DCRun, error) {
	return parallel.Map(context.Background(), len(names), opt.Workers, func(i int) (*DCRun, error) {
		return Run(names[i], opt)
	})
}

// ---------------------------------------------------------------- Fig. 5

// Fig5Row is one slice of one datacenter's service-power pie.
type Fig5Row struct {
	DC       workload.DCName
	Service  string
	Class    workload.Class
	SharePct float64
}

// Fig5 reports the breakdown of average power by service per datacenter.
func Fig5(opt Options) ([]Fig5Row, error) {
	perDC, err := parallel.Map(context.Background(), len(workload.AllDCs), opt.Workers, func(i int) ([]Fig5Row, error) {
		name := workload.AllDCs[i]
		run, err := Setup(name, opt)
		if err != nil {
			return nil, err
		}
		var rows []Fig5Row
		for _, sp := range run.Fleet.PowerBreakdown() {
			rows = append(rows, Fig5Row{DC: name, Service: sp.Service, Class: sp.Class, SharePct: 100 * sp.Share})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, r := range perDC {
		rows = append(rows, r...)
	}
	return rows, nil
}

// FormatFig5 renders the breakdown as the per-DC pie tables.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Fig. 5 — 30-day average power breakdown by service\n")
	cur := workload.DCName("")
	for _, r := range rows {
		if r.DC != cur {
			cur = r.DC
			fmt.Fprintf(&b, "\n%s:\n", cur)
		}
		fmt.Fprintf(&b, "  %-14s %-8s %5.1f%%\n", r.Service, r.Class, r.SharePct)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Series is the diurnal percentile-band data of one service.
type Fig6Series struct {
	Service string
	// Bands are the cross-sectional percentile bands over the service's
	// instance population, normalized to the max single-server reading.
	Bands []timeseries.Band
	// Step and Points describe the folded one-week series.
	Step   time.Duration
	Points int
}

// Fig6 computes p5–p95 (and inner) bands for web-like, db and hadoop
// services over one folded week in DC1.
func Fig6(opt Options) ([]Fig6Series, error) {
	run, err := Setup(workload.DC1, opt)
	if err != nil {
		return nil, err
	}
	avg, err := run.Fleet.AveragedITraces(2)
	if err != nil {
		return nil, err
	}
	// Global normalization: max single-server reading in the DC.
	var maxReading float64
	for _, s := range avg {
		if p := s.Peak(); p > maxReading {
			maxReading = p
		}
	}
	pairs := [][2]float64{{5, 95}, {15, 85}, {25, 75}, {35, 65}, {45, 55}}
	var out []Fig6Series
	for _, svc := range []string{"frontend", "dbA", "hadoop"} {
		insts := run.Fleet.ServiceInstances(svc)
		if len(insts) == 0 {
			return nil, fmt.Errorf("experiments: DC1 lacks service %q", svc)
		}
		pop := make([]timeseries.Series, len(insts))
		for i, inst := range insts {
			pop[i] = avg[inst.ID].Scale(1 / maxReading)
		}
		bands, err := timeseries.CrossSectionBands(pop, pairs)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Series{Service: svc, Bands: bands, Step: pop[0].Step, Points: pop[0].Len()})
	}
	return out, nil
}

// FormatFig6 summarises the bands at a few representative hours.
func FormatFig6(series []Fig6Series) string {
	var b strings.Builder
	b.WriteString("Fig. 6 — diurnal percentile bands (normalized power, Monday samples)\n")
	for _, s := range series {
		fmt.Fprintf(&b, "\n%s (p5–p95 band):\n", s.Service)
		stepsPerHour := int(time.Hour / s.Step)
		for _, hour := range []int{0, 4, 8, 12, 16, 20} {
			i := hour * stepsPerHour
			if i >= s.Points {
				continue
			}
			outer := s.Bands[0]
			fmt.Fprintf(&b, "  %02d:00  %.3f – %.3f\n", hour, outer.Lo[i], outer.Hi[i])
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Point is one instance in the t-SNE projection of asynchrony-score
// space, tagged with its k-means cluster.
type Fig8Point struct {
	ID      string
	Service string
	Cluster int
	X, Y    float64
}

// Fig8 embeds one suite's worth of DC1 instances into asynchrony-score
// space, clusters them, and projects to 2-D with t-SNE.
func Fig8(opt Options, k int) ([]Fig8Point, error) {
	opt = opt.withDefaults()
	if k <= 0 {
		k = 6
	}
	run, err := Setup(workload.DC1, opt)
	if err != nil {
		return nil, err
	}
	avg, err := run.Fleet.AveragedITraces(2)
	if err != nil {
		return nil, err
	}
	// One suite's share of the fleet: every fourth instance, which samples
	// all services (a physical suite hosts a cross-section of the fleet).
	var insts []*workload.Instance
	for i := 0; i < len(run.Fleet.Instances); i += 4 {
		insts = append(insts, run.Fleet.Instances[i])
	}
	if len(insts) < k {
		insts = run.Fleet.Instances
	}

	// Basis: top services' S-traces.
	byService := make(map[string][]timeseries.Series)
	for _, inst := range insts {
		byService[inst.Service] = append(byService[inst.Service], avg[inst.ID])
	}
	top := run.Fleet.TopServices(opt.TopServices)
	var names []string
	for _, svc := range top {
		if len(byService[svc]) > 0 {
			names = append(names, svc)
		}
	}
	basis, err := score.ServiceTraces(names, byService)
	if err != nil {
		return nil, err
	}
	series := make([]timeseries.Series, len(insts))
	for i, inst := range insts {
		series[i] = avg[inst.ID]
	}
	points, err := score.Vectors(series, basis)
	if err != nil {
		return nil, err
	}
	res, err := cluster.KMeans(points, cluster.Config{K: k, Seed: opt.Seed, Restarts: 2, Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	emb, err := cluster.TSNE(points, cluster.TSNEConfig{Perplexity: 20, Iterations: 300, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Point, len(insts))
	for i, inst := range insts {
		out[i] = Fig8Point{ID: inst.ID, Service: inst.Service, Cluster: res.Assign[i], X: emb[i][0], Y: emb[i][1]}
	}
	return out, nil
}

// FormatFig8 summarises cluster composition (the textual equivalent of the
// colored scatter).
func FormatFig8(points []Fig8Point) string {
	comp := make(map[int]map[string]int)
	for _, p := range points {
		if comp[p.Cluster] == nil {
			comp[p.Cluster] = make(map[string]int)
		}
		comp[p.Cluster][p.Service]++
	}
	clusters := make([]int, 0, len(comp))
	for c := range comp {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — k-means clusters in asynchrony-score space (%d instances, t-SNE projected)\n", len(points))
	for _, c := range clusters {
		fmt.Fprintf(&b, "  cluster %d:", c)
		svcs := make([]string, 0, len(comp[c]))
		for svc := range comp[c] {
			svcs = append(svcs, svc)
		}
		sort.Strings(svcs)
		for _, svc := range svcs {
			fmt.Fprintf(&b, " %s×%d", svc, comp[c][svc])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

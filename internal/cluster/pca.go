package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// PCA projects points onto their top-2 principal components — the linear,
// deterministic alternative to t-SNE for Fig. 8-style views of the
// asynchrony-score space. Computed with power iteration on the covariance
// matrix plus deflation; exact enough for visualization at |B| ≤ a few
// dozen dimensions.
func PCA(points [][]float64, seed int64) ([][2]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, ErrRagged
		}
	}
	if dim == 0 {
		return nil, fmt.Errorf("cluster: PCA needs ≥1 dimension")
	}
	// Center.
	mean := make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= float64(n)
	}
	centered := make([][]float64, n)
	for i, p := range points {
		c := make([]float64, dim)
		for d, v := range p {
			c[d] = v - mean[d]
		}
		centered[i] = c
	}
	// Covariance.
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, c := range centered {
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				cov[i][j] += c[i] * c[j]
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
	}

	rng := rand.New(rand.NewSource(seed))
	components := make([][]float64, 0, 2)
	work := cov
	for c := 0; c < 2 && c < dim; c++ {
		vec, lambda := powerIteration(work, rng)
		components = append(components, vec)
		// Deflate: work -= λ·vvᵀ.
		next := make([][]float64, dim)
		for i := range next {
			next[i] = make([]float64, dim)
			for j := range next[i] {
				next[i][j] = work[i][j] - lambda*vec[i]*vec[j]
			}
		}
		work = next
	}
	out := make([][2]float64, n)
	for i, p := range centered {
		for c, vec := range components {
			var dot float64
			for d := range p {
				dot += p[d] * vec[d]
			}
			out[i][c] = dot
		}
	}
	return out, nil
}

// powerIteration returns the dominant eigenvector and eigenvalue of a
// symmetric PSD matrix.
func powerIteration(m [][]float64, rng *rand.Rand) ([]float64, float64) {
	dim := len(m)
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	tmp := make([]float64, dim)
	var lambda float64
	for iter := 0; iter < 200; iter++ {
		for i := range tmp {
			var s float64
			for j := range v {
				s += m[i][j] * v[j]
			}
			tmp[i] = s
		}
		lambda = norm(tmp)
		if lambda < 1e-12 {
			// Degenerate (zero-variance) direction; return the current v.
			return v, 0
		}
		prev := append([]float64(nil), v...)
		copy(v, tmp)
		normalize(v)
		// Converged when direction stabilizes (up to sign).
		var dot float64
		for i := range v {
			dot += v[i] * prev[i]
		}
		if math.Abs(math.Abs(dot)-1) < 1e-12 {
			break
		}
	}
	return v, lambda
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}

package cluster_test

import (
	"fmt"

	"repro/internal/cluster"
)

// Balanced k-means produces the equal-size synchronous groups the placement
// step deals across power nodes (§3.5).
func ExampleBalancedKMeans() {
	// Nine points in three obvious groups along a line.
	points := [][]float64{
		{0.0}, {0.1}, {0.2},
		{10.0}, {10.1}, {10.2},
		{20.0}, {20.1}, {20.2},
	}
	res, err := cluster.BalancedKMeans(points, cluster.Config{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("sizes:", res.Sizes[0], res.Sizes[1], res.Sizes[2])
	same := res.Assign[0] == res.Assign[1] && res.Assign[1] == res.Assign[2]
	fmt.Println("first group intact:", same)
	// Output:
	// sizes: 3 3 3
	// first group intact: true
}

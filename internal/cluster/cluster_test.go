package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated Gaussian blobs of perCluster points each.
func blobs(k, perCluster, dim int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var points [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = float64(c*20) + rng.Float64()
		}
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = center[d] + rng.NormFloat64()*0.5
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

// agrees reports whether a clustering recovers ground-truth labels up to
// cluster renaming.
func agrees(assign, labels []int, k int) bool {
	mapping := make(map[int]int)
	for i, a := range assign {
		if want, ok := mapping[a]; ok {
			if want != labels[i] {
				return false
			}
		} else {
			mapping[a] = labels[i]
		}
	}
	return len(mapping) == k
}

func TestKMeansRecoverBlobs(t *testing.T) {
	points, labels := blobs(3, 30, 4, 1)
	res, err := KMeans(points, Config{K: 3, Seed: 42, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !agrees(res.Assign, labels, 3) {
		t.Fatal("k-means failed to recover well-separated blobs")
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v", res.Inertia)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(points) {
		t.Fatalf("sizes sum to %d", total)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	points, _ := blobs(3, 20, 3, 2)
	a, _ := KMeans(points, Config{K: 3, Seed: 7})
	b, _ := KMeans(points, Config{K: 3, Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same assignment")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, Config{K: 1}); err != ErrNoPoints {
		t.Fatalf("no points: %v", err)
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, Config{K: 0}); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := KMeans(pts, Config{K: 3}); err != ErrBadK {
		t.Fatalf("k>n: %v", err)
	}
	ragged := [][]float64{{1, 2}, {1}}
	if _, err := KMeans(ragged, Config{K: 1}); err != ErrRagged {
		t.Fatalf("ragged: %v", err)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sizes {
		if s != 1 {
			t.Fatalf("sizes = %v", res.Sizes)
		}
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("inertia should be ~0, got %v", res.Inertia)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(pts, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 4 {
		t.Fatal("all points must be assigned")
	}
}

func TestKMeansMembers(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {100}}
	res, err := KMeans(pts, Config{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	loner := res.Assign[2]
	members := res.Members(loner)
	if len(members) != 1 || members[0] != 2 {
		t.Fatalf("Members(%d) = %v", loner, members)
	}
}

// Property: every point is assigned to its nearest centroid at convergence.
func TestKMeansNearestCentroidProperty(t *testing.T) {
	f := func(seed int64) bool {
		points, _ := blobs(3, 15, 2, seed%1000)
		res, err := KMeans(points, Config{K: 3, Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range points {
			own := sqDist(p, res.Centroids[res.Assign[i]])
			for _, c := range res.Centroids {
				if sqDist(p, c) < own-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedKMeansSizes(t *testing.T) {
	points, _ := blobs(3, 25, 3, 9)
	// 75 points into 4 clusters: sizes must be 19,19,19,18.
	res, err := BalancedKMeans(points, Config{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sizes := append([]int(nil), res.Sizes...)
	max, min := 0, len(points)
	total := 0
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
		if s < min {
			min = s
		}
	}
	if total != len(points) {
		t.Fatalf("sizes sum %d", total)
	}
	if max-min > 1 {
		t.Fatalf("unbalanced sizes: %v", sizes)
	}
}

func TestBalancedKMeansExactDivision(t *testing.T) {
	points, labels := blobs(4, 20, 3, 13)
	res, err := BalancedKMeans(points, Config{K: 4, Seed: 17, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sizes {
		if s != 20 {
			t.Fatalf("sizes = %v, want all 20", res.Sizes)
		}
	}
	// With well-separated equal blobs, balanced k-means should still recover
	// the ground truth.
	if !agrees(res.Assign, labels, 4) {
		t.Fatal("balanced k-means failed on separable equal blobs")
	}
}

// Property: balanced sizes differ by ≤1 for any n, k.
func TestBalancedSizesProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw%40) + 2
		k := int(kRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		res, err := BalancedKMeans(points, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		min, max := n, 0
		for _, s := range res.Sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouette(t *testing.T) {
	points, labels := blobs(2, 20, 2, 21)
	good, err := Silhouette(points, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.7 {
		t.Fatalf("silhouette of separable blobs = %v, want high", good)
	}
	// Random labels should score much worse.
	rng := rand.New(rand.NewSource(5))
	bad := make([]int, len(points))
	for i := range bad {
		bad[i] = rng.Intn(2)
	}
	worse, err := Silhouette(points, bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= good {
		t.Fatalf("random labels silhouette %v >= true %v", worse, good)
	}
	if _, err := Silhouette(nil, nil, 2); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Silhouette(points, labels[:3], 2); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestTSNESeparatesBlobs(t *testing.T) {
	points, labels := blobs(2, 15, 5, 31)
	emb, err := TSNE(points, TSNEConfig{Perplexity: 8, Iterations: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != len(points) {
		t.Fatalf("embedding size %d", len(emb))
	}
	// Mean within-cluster distance must be below mean across-cluster
	// distance in the embedding.
	var within, across float64
	var nw, na int
	for i := range emb {
		for j := i + 1; j < len(emb); j++ {
			dx := emb[i][0] - emb[j][0]
			dy := emb[i][1] - emb[j][1]
			d := math.Hypot(dx, dy)
			if labels[i] == labels[j] {
				within += d
				nw++
			} else {
				across += d
				na++
			}
		}
	}
	if within/float64(nw) >= across/float64(na) {
		t.Fatalf("t-SNE did not separate blobs: within %v across %v", within/float64(nw), across/float64(na))
	}
}

func TestTSNEEdgeCases(t *testing.T) {
	if _, err := TSNE(nil, TSNEConfig{}); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	one, err := TSNE([][]float64{{1, 2}}, TSNEConfig{})
	if err != nil || len(one) != 1 {
		t.Fatalf("single point: %v %v", one, err)
	}
	if _, err := TSNE([][]float64{{1}, {1, 2}}, TSNEConfig{}); err != ErrRagged {
		t.Fatalf("ragged: %v", err)
	}
	// Tiny population: perplexity auto-clamps instead of failing.
	small, err := TSNE([][]float64{{0}, {1}, {5}}, TSNEConfig{Perplexity: 50, Iterations: 50, Seed: 1})
	if err != nil || len(small) != 3 {
		t.Fatalf("small population: %v %v", small, err)
	}
}

func TestTSNEDeterministic(t *testing.T) {
	points, _ := blobs(2, 10, 3, 77)
	a, err := TSNE(points, TSNEConfig{Iterations: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TSNE(points, TSNEConfig{Iterations: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the embedding")
		}
	}
}

package cluster

import (
	"math/rand"
	"testing"
)

// orthogonalBlobs places k blobs at axis-aligned, non-collinear centers so
// the inertia curve has a crisp elbow at k.
func orthogonalBlobs(k, perCluster, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var points [][]float64
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		center[c%dim] = 30 * float64(1+c/dim)
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = center[d] + rng.NormFloat64()*0.5
			}
			points = append(points, p)
		}
	}
	return points
}

func TestElbowSweep(t *testing.T) {
	points := orthogonalBlobs(4, 20, 3, 8)
	curve, err := ElbowSweep(points, 1, 8, Config{Seed: 1, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 8 {
		t.Fatalf("curve len = %d", len(curve))
	}
	// Inertia must be (weakly) decreasing in k.
	for i := 1; i < len(curve); i++ {
		if curve[i].Inertia > curve[i-1].Inertia*1.05 {
			t.Fatalf("inertia not decreasing: %+v", curve)
		}
	}
	// The elbow of 4 well-separated blobs is at or near k=4.
	k, err := ChooseK(curve)
	if err != nil {
		t.Fatal(err)
	}
	if k < 3 || k > 5 {
		t.Fatalf("elbow k = %d, want ≈4", k)
	}
}

func TestElbowSweepErrors(t *testing.T) {
	points, _ := blobs(2, 5, 2, 1)
	if _, err := ElbowSweep(points, 0, 3, Config{}); err == nil {
		t.Fatal("kMin 0 must error")
	}
	if _, err := ElbowSweep(points, 5, 3, Config{}); err == nil {
		t.Fatal("kMax < kMin must error")
	}
	// kMax clamps to the point count.
	curve, err := ElbowSweep(points, 1, 100, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if curve[len(curve)-1].K != 10 {
		t.Fatalf("kMax clamp: %+v", curve[len(curve)-1])
	}
}

func TestChooseKEdgeCases(t *testing.T) {
	if _, err := ChooseK(nil); err != ErrNoPoints {
		t.Fatalf("empty curve: %v", err)
	}
	k, err := ChooseK([]ElbowPoint{{K: 3, Inertia: 5}})
	if err != nil || k != 3 {
		t.Fatalf("single point: %d %v", k, err)
	}
	k, err = ChooseK([]ElbowPoint{{K: 1, Inertia: 10}, {K: 2, Inertia: 1}})
	if err != nil || k != 1 {
		t.Fatalf("two points: %d %v", k, err)
	}
}

package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// TSNEConfig tunes the exact t-SNE implementation used for Fig. 8's
// two-dimensional projection of instances in asynchrony-score space.
type TSNEConfig struct {
	// Perplexity balances local/global structure; typical 5–50.
	Perplexity float64
	// Iterations of gradient descent; 0 means 500.
	Iterations int
	// LearningRate of gradient descent; 0 means 100.
	LearningRate float64
	// Seed makes the embedding deterministic.
	Seed int64
}

// TSNE embeds points into 2-D with exact (non-Barnes-Hut) t-SNE
// (van der Maaten & Hinton, JMLR 2008). Suitable for the few-hundred to
// few-thousand point populations a suite holds.
func TSNE(points [][]float64, cfg TSNEConfig) ([][2]float64, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, ErrRagged
		}
	}
	if n == 1 {
		return make([][2]float64, 1), nil
	}
	perplexity := cfg.Perplexity
	if perplexity <= 0 {
		perplexity = 30
	}
	if maxPerp := float64(n-1) / 3; perplexity > maxPerp {
		perplexity = math.Max(2, maxPerp)
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 500
	}
	lr := cfg.LearningRate
	if lr <= 0 {
		lr = 100
	}

	// Pairwise squared distances in the input space.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := 0; j < i; j++ {
			d := sqDist(points[i], points[j])
			d2[i][j] = d
			d2[j][i] = d
		}
	}

	// Conditional probabilities with per-point bandwidth found by binary
	// search on perplexity.
	p := make([][]float64, n)
	logPerp := math.Log(perplexity)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 0.0, math.Inf(1)
		beta := 1.0
		for iter := 0; iter < 50; iter++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p[i][j] = math.Exp(-beta * d2[i][j])
				sum += p[i][j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			var entropy float64
			for j := 0; j < n; j++ {
				if j == i || p[i][j] == 0 {
					continue
				}
				pj := p[i][j] / sum
				p[i][j] = pj
				if pj > 1e-12 {
					entropy -= pj * math.Log(pj)
				}
			}
			diff := entropy - logPerp
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high → narrow the kernel
				lo = beta
				if math.IsInf(hi, 1) {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
	}
	// Symmetrize and normalize; early exaggeration ×4 for the first quarter.
	pij := make([][]float64, n)
	var psum float64
	for i := range pij {
		pij[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			pij[i][j] = math.Max(v, 1e-12)
			psum += pij[i][j]
		}
	}
	_ = psum

	rng := rand.New(rand.NewSource(cfg.Seed))
	y := make([][2]float64, n)
	vel := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}

	exaggerate := iters / 4
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for iter := 0; iter < iters; iter++ {
		exag := 1.0
		if iter < exaggerate {
			exag = 4
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		// Low-dimensional affinities (Student-t kernel).
		var qsum float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				v := 1 / (1 + dx*dx + dy*dy)
				q[i][j] = v
				q[j][i] = v
				qsum += 2 * v
			}
		}
		if qsum == 0 {
			qsum = 1e-12
		}
		// Gradient step.
		for i := 0; i < n; i++ {
			var gx, gy float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				qn := math.Max(q[i][j]/qsum, 1e-12)
				mult := (exag*pij[i][j] - qn) * q[i][j]
				gx += 4 * mult * (y[i][0] - y[j][0])
				gy += 4 * mult * (y[i][1] - y[j][1])
			}
			vel[i][0] = momentum*vel[i][0] - lr*gx
			vel[i][1] = momentum*vel[i][1] - lr*gy
			y[i][0] += vel[i][0]
			y[i][1] += vel[i][1]
		}
		// Re-centre to keep the embedding bounded.
		var cx, cy float64
		for i := range y {
			cx += y[i][0]
			cy += y[i][1]
		}
		cx /= float64(n)
		cy /= float64(n)
		for i := range y {
			y[i][0] -= cx
			y[i][1] -= cy
		}
	}
	for i := range y {
		if math.IsNaN(y[i][0]) || math.IsNaN(y[i][1]) {
			return nil, fmt.Errorf("cluster: t-SNE diverged (try a lower learning rate)")
		}
	}
	return y, nil
}

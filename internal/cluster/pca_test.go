package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestPCARecoverDominantDirection(t *testing.T) {
	// Points along the (1, 1, 0) diagonal with small orthogonal noise: PC1
	// must capture far more variance than PC2.
	rng := rand.New(rand.NewSource(4))
	points := make([][]float64, 200)
	for i := range points {
		s := rng.NormFloat64() * 10
		points[i] = []float64{s + rng.NormFloat64()*0.1, s + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1}
	}
	emb, err := PCA(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	var var1, var2 float64
	for _, p := range emb {
		var1 += p[0] * p[0]
		var2 += p[1] * p[1]
	}
	if var1 < 50*var2 {
		t.Fatalf("PC1 variance %v should dwarf PC2 %v", var1, var2)
	}
}

func TestPCASeparatesBlobs(t *testing.T) {
	points, labels := blobs(2, 25, 5, 6)
	emb, err := PCA(points, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The two blobs must separate along PC1.
	var mean0, mean1 float64
	var n0, n1 int
	for i, p := range emb {
		if labels[i] == 0 {
			mean0 += p[0]
			n0++
		} else {
			mean1 += p[0]
			n1++
		}
	}
	mean0 /= float64(n0)
	mean1 /= float64(n1)
	if math.Abs(mean0-mean1) < 5 {
		t.Fatalf("blobs not separated on PC1: %v vs %v", mean0, mean1)
	}
}

func TestPCADeterministic(t *testing.T) {
	points, _ := blobs(3, 10, 4, 9)
	a, err := PCA(points, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PCA(points, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the projection")
		}
	}
}

func TestPCAEdgeCases(t *testing.T) {
	if _, err := PCA(nil, 1); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := PCA([][]float64{{1}, {1, 2}}, 1); err != ErrRagged {
		t.Fatalf("ragged: %v", err)
	}
	// 1-D input: PC2 is zero everywhere.
	emb, err := PCA([][]float64{{1}, {2}, {3}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range emb {
		if p[1] != 0 {
			t.Fatalf("1-D input must have zero PC2: %v", emb)
		}
	}
	// Identical points: zero-variance input stays finite.
	same, err := PCA([][]float64{{2, 2}, {2, 2}, {2, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range same {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			t.Fatal("degenerate input produced NaN")
		}
	}
}

package cluster

import "repro/internal/obs"

// Clustering metrics (see DESIGN.md "Observability"). Updated after the
// restart fan-out completes, so values are replay-deterministic at any
// worker count.
var (
	obsKMeansRuns = obs.Default().Counter("smoothop_cluster_kmeans_runs_total",
		"Completed KMeans invocations.")
	obsRestarts = obs.Default().Counter("smoothop_cluster_kmeans_restarts_total",
		"K-means restarts executed across all runs.")
	obsIterations = obs.Default().Counter("smoothop_cluster_kmeans_iterations_total",
		"Lloyd iterations executed across all restarts.")
)

package cluster

import (
	"fmt"
	"math"
)

// ElbowPoint is one k of an elbow sweep.
type ElbowPoint struct {
	// K is the cluster count.
	K int
	// Inertia is the within-cluster sum of squares at that k.
	Inertia float64
}

// ElbowSweep runs k-means for each k in [kMin, kMax] and returns the
// inertia curve — the standard input to choosing h, the number of
// synchronous groups the placement step deals out (§3.5 fixes h as a
// multiple of the child count; the sweep shows how much structure the score
// space actually has).
func ElbowSweep(points [][]float64, kMin, kMax int, cfg Config) ([]ElbowPoint, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("cluster: bad k range [%d, %d]", kMin, kMax)
	}
	if kMax > len(points) {
		kMax = len(points)
	}
	if kMax < kMin {
		return nil, ErrBadK
	}
	out := make([]ElbowPoint, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		c := cfg
		c.K = k
		res, err := KMeans(points, c)
		if err != nil {
			return nil, err
		}
		out = append(out, ElbowPoint{K: k, Inertia: res.Inertia})
	}
	return out, nil
}

// ChooseK picks the elbow of an inertia curve by maximum distance to the
// chord between the first and last points — a robust, parameter-free elbow
// criterion. Returns the chosen k.
func ChooseK(curve []ElbowPoint) (int, error) {
	if len(curve) == 0 {
		return 0, ErrNoPoints
	}
	if len(curve) <= 2 {
		return curve[0].K, nil
	}
	first, last := curve[0], curve[len(curve)-1]
	dx := float64(last.K - first.K)
	dy := last.Inertia - first.Inertia
	norm := dx*dx + dy*dy
	bestK, bestD := first.K, -1.0
	for _, p := range curve {
		// Perpendicular distance from p to the chord.
		num := dy*float64(p.K) - dx*p.Inertia + dx*first.Inertia - dy*float64(first.K)
		if num < 0 {
			num = -num
		}
		d := num
		if norm > 0 {
			d = num / math.Sqrt(norm)
		}
		if d > bestD {
			bestD, bestK = d, p.K
		}
	}
	return bestK, nil
}

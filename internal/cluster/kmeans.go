// Package cluster provides the clustering machinery SmoothOperator's
// placement step relies on: k-means with k-means++ seeding (§3.5 applies
// k-means to instances embedded in asynchrony-score space), a balanced
// variant producing equal-size clusters ("Each of these clusters have the
// same number of instances"), quality scores, and an exact t-SNE for the
// Fig. 8 style two-dimensional projection.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/parallel"
)

// Errors returned by clustering entry points.
var (
	ErrNoPoints = errors.New("cluster: no points")
	ErrBadK     = errors.New("cluster: k must be in [1, len(points)]")
	ErrRagged   = errors.New("cluster: points have differing dimensions")
)

// Result is a clustering of n points into k clusters.
type Result struct {
	// Assign maps point index → cluster index.
	Assign []int
	// Centroids holds the k cluster centres.
	Centroids [][]float64
	// Sizes holds per-cluster point counts.
	Sizes []int
	// Inertia is the total squared distance of points to their centroids.
	Inertia float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// Members returns the point indices assigned to cluster c, in order.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Config tunes KMeans.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIters bounds Lloyd iterations; 0 means 100.
	MaxIters int
	// Restarts runs the whole algorithm multiple times and keeps the best
	// inertia; 0 means 1 run. Restarts are independent (each gets its own
	// rng derived from Seed and the restart index) and run concurrently.
	Restarts int
	// Seed makes the run deterministic.
	Seed int64
	// Workers bounds the goroutines running restarts; 0 means the package
	// default (SMOOTHOP_WORKERS or GOMAXPROCS). The result is identical for
	// any worker count.
	Workers int
}

func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

func validate(points [][]float64, k int) error {
	if len(points) == 0 {
		return ErrNoPoints
	}
	if k < 1 || k > len(points) {
		return ErrBadK
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return ErrRagged
		}
	}
	return nil
}

// seedPlusPlus picks k initial centroids with the k-means++ rule.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	chosen := make([]bool, len(points))
	firstIdx := rng.Intn(len(points))
	chosen[firstIdx] = true
	centroids = append(centroids, append([]float64(nil), points[firstIdx]...))
	dists := make([]float64, len(points))
	for i, p := range points {
		dists[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range dists {
			total += d
		}
		var idx int
		if total == 0 {
			// Every remaining point coincides with an already-chosen
			// centroid. Picking uniformly from *all* points here could
			// re-pick a chosen point and duplicate a centroid, leaving its
			// cluster empty; restrict the fallback to points not yet chosen
			// (always non-empty since k ≤ len(points)).
			free := make([]int, 0, len(points)-len(centroids))
			for i := range points {
				if !chosen[i] {
					free = append(free, i)
				}
			}
			idx = free[rng.Intn(len(free))]
		} else {
			target := rng.Float64() * total
			acc := 0.0
			idx = len(points) - 1
			for i, d := range dists {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		chosen[idx] = true
		centroids = append(centroids, append([]float64(nil), points[idx]...))
		for i, p := range points {
			if d := sqDist(p, centroids[len(centroids)-1]); d < dists[i] {
				dists[i] = d
			}
		}
	}
	return centroids
}

// KMeans clusters points with Lloyd's algorithm and k-means++ seeding.
// Empty clusters are repaired by stealing the point farthest from its
// centroid.
func KMeans(points [][]float64, cfg Config) (*Result, error) {
	if err := validate(points, cfg.K); err != nil {
		return nil, err
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 100
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	// Restarts are independent: each derives its own rng from (Seed, index)
	// and writes its result at its index, so the best-inertia selection below
	// — in index order, earliest wins on ties — is bit-identical to a serial
	// run for any worker count.
	results := make([]*Result, restarts)
	if err := parallel.ForEach(context.Background(), restarts, cfg.Workers, func(r int) error {
		rng := rand.New(rand.NewSource(restartSeed(cfg.Seed, r)))
		results[r] = lloyd(points, cfg.K, maxIters, rng)
		return nil
	}); err != nil {
		return nil, err
	}
	best := results[0]
	var iters uint64
	for _, res := range results {
		if res.Inertia < best.Inertia {
			best = res
		}
		iters += uint64(res.Iterations)
	}
	obsKMeansRuns.Inc()
	obsRestarts.Add(uint64(restarts))
	obsIterations.Add(iters)
	return best, nil
}

// restartSeed derives the rng seed of restart r. Restart 0 uses the
// configured seed unchanged (so single-restart runs reproduce the historical
// serial results); later restarts get independent index-addressed streams
// via a SplitMix64-style mix, never a shared sequential stream.
func restartSeed(seed int64, r int) int64 {
	if r == 0 {
		return seed
	}
	z := uint64(seed) + uint64(r)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func lloyd(points [][]float64, k, maxIters int, rng *rand.Rand) *Result {
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					bestD, bestC = d, c
				}
			}
			if assign[i] != bestC {
				changed = true
				assign[i] = bestC
			}
			sizes[bestC]++
		}
		// Repair empty clusters: move in the globally worst-fitting point.
		for c := 0; c < k; c++ {
			if sizes[c] > 0 {
				continue
			}
			worstI, worstD := -1, -1.0
			for i, p := range points {
				if sizes[assign[i]] <= 1 {
					continue
				}
				if d := sqDist(p, centroids[assign[i]]); d > worstD {
					worstD, worstI = d, i
				}
			}
			if worstI >= 0 {
				sizes[assign[worstI]]--
				assign[worstI] = c
				sizes[c] = 1
				changed = true
			}
		}
		// Recompute centroids.
		for c := range centroids {
			for d := 0; d < dim; d++ {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			for d := 0; d < dim; d++ {
				centroids[c][d] += p[d]
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] /= float64(sizes[c])
			}
		}
		if !changed {
			break
		}
	}
	var inertia float64
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return &Result{Assign: assign, Centroids: centroids, Sizes: sizes, Inertia: inertia, Iterations: iters}
}

// BalancedKMeans produces clusters whose sizes differ by at most one:
// ⌈n/k⌉ for the first n mod k clusters and ⌊n/k⌋ for the rest. It runs
// plain k-means first, then assigns points to clusters greedily by distance
// under capacity constraints, and finishes with centroid refinement passes.
//
// The placement step needs this because it deals |c_j|/q instances of every
// cluster to each child power node (§3.5); wildly uneven clusters would
// leave remainders that skew the deal.
func BalancedKMeans(points [][]float64, cfg Config) (*Result, error) {
	if err := validate(points, cfg.K); err != nil {
		return nil, err
	}
	base, err := KMeans(points, cfg)
	if err != nil {
		return nil, err
	}
	k := cfg.K
	n := len(points)
	capacity := make([]int, k)
	for c := range capacity {
		capacity[c] = n / k
		if c < n%k {
			capacity[c]++
		}
	}
	res := &Result{Centroids: base.Centroids, Assign: make([]int, n), Sizes: make([]int, k), Iterations: base.Iterations}

	refine := func() {
		// Order points by how much they prefer their best cluster (most
		// decisive first), then fill under capacity.
		type cand struct {
			point  int
			prefs  []int // cluster indices sorted by distance
			margin float64
		}
		cands := make([]cand, n)
		for i, p := range points {
			prefs := make([]int, k)
			for c := range prefs {
				prefs[c] = c
			}
			sort.Slice(prefs, func(a, b int) bool {
				return sqDist(p, res.Centroids[prefs[a]]) < sqDist(p, res.Centroids[prefs[b]])
			})
			margin := 0.0
			if k > 1 {
				margin = sqDist(p, res.Centroids[prefs[1]]) - sqDist(p, res.Centroids[prefs[0]])
			}
			cands[i] = cand{point: i, prefs: prefs, margin: margin}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].margin != cands[b].margin {
				return cands[a].margin > cands[b].margin
			}
			return cands[a].point < cands[b].point
		})
		remaining := append([]int(nil), capacity...)
		for i := range res.Sizes {
			res.Sizes[i] = 0
		}
		for _, cd := range cands {
			for _, c := range cd.prefs {
				if remaining[c] > 0 {
					res.Assign[cd.point] = c
					remaining[c]--
					res.Sizes[c]++
					break
				}
			}
		}
	}

	const passes = 4
	dim := len(points[0])
	for pass := 0; pass < passes; pass++ {
		refine()
		// Recompute centroids from the balanced assignment.
		for c := range res.Centroids {
			for d := 0; d < dim; d++ {
				res.Centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := res.Assign[i]
			for d := 0; d < dim; d++ {
				res.Centroids[c][d] += p[d]
			}
		}
		for c := range res.Centroids {
			if res.Sizes[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				res.Centroids[c][d] /= float64(res.Sizes[c])
			}
		}
	}
	refine()
	res.Inertia = 0
	for i, p := range points {
		res.Inertia += sqDist(p, res.Centroids[res.Assign[i]])
	}
	return res, nil
}

// Silhouette returns the mean silhouette coefficient of a clustering, a
// standard quality score in [−1, 1]. Clusters of size 1 contribute 0.
// O(n²); intended for diagnostics and tests, not hot paths.
func Silhouette(points [][]float64, assign []int, k int) (float64, error) {
	if len(points) == 0 {
		return 0, ErrNoPoints
	}
	if len(assign) != len(points) {
		return 0, fmt.Errorf("cluster: assign length %d != points %d", len(assign), len(points))
	}
	n := len(points)
	var total float64
	for i := 0; i < n; i++ {
		// Mean distance to own cluster (a) and nearest other cluster (b).
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := math.Sqrt(sqDist(points[i], points[j]))
			sums[assign[j]] += d
			counts[assign[j]]++
		}
		own := assign[i]
		if counts[own] == 0 {
			continue // singleton cluster contributes 0
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n), nil
}

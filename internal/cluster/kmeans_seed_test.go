package cluster

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// countValue returns how many centroids equal the given point.
func countValue(centroids [][]float64, want []float64) int {
	n := 0
	for _, c := range centroids {
		if reflect.DeepEqual(c, want) {
			n++
		}
	}
	return n
}

// Regression test for the k-means++ zero-distance fallback: with coincident
// points, once every distinct value has been chosen the remaining distances
// are all zero, and the old fallback picked uniformly from *all* points —
// re-picking an already-chosen point, duplicating a centroid, and leaving a
// cluster empty. The fix restricts the fallback to unchosen points, so the
// k centroids are always k distinct point indices.
func TestSeedPlusPlusCoincidentPoints(t *testing.T) {
	// Two coincident points plus one outlier, k = 3: a correct seeding must
	// use all three point indices, i.e. the outlier appears exactly once.
	points := [][]float64{{0, 0}, {0, 0}, {5, 5}}
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cents := seedPlusPlus(points, 3, rng)
		if n := countValue(cents, []float64{5, 5}); n != 1 {
			t.Fatalf("seed %d: outlier chosen %d times, want 1 (centroids %v)", seed, n, cents)
		}
	}
}

func TestSeedPlusPlusCoincidentPairs(t *testing.T) {
	// Two coincident pairs, k = 4: every point index must be chosen, so each
	// value appears exactly twice.
	points := [][]float64{{0, 0}, {0, 0}, {9, 9}, {9, 9}}
	for seed := int64(0); seed < 64; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cents := seedPlusPlus(points, 4, rng)
		if a, b := countValue(cents, []float64{0, 0}), countValue(cents, []float64{9, 9}); a != 2 || b != 2 {
			t.Fatalf("seed %d: value counts %d/%d, want 2/2 (centroids %v)", seed, a, b, cents)
		}
	}
}

func TestKMeansCoincidentPointsNoEmptyCluster(t *testing.T) {
	points := [][]float64{{0, 0}, {0, 0}, {5, 5}}
	for seed := int64(0); seed < 16; seed++ {
		res, err := KMeans(points, Config{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for c, size := range res.Sizes {
			if size != 1 {
				t.Fatalf("seed %d: cluster %d has size %d, want 1 (sizes %v)", seed, c, size, res.Sizes)
			}
		}
		if res.Inertia != 0 {
			t.Fatalf("seed %d: inertia %v, want 0", seed, res.Inertia)
		}
	}
}

func TestKMeansRestartsParallelMatchesSerial(t *testing.T) {
	points, _ := blobs(4, 30, 3, 5)
	cfg := Config{K: 4, Seed: 9, Restarts: 6}
	cfg.Workers = 1
	want, err := KMeans(points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		cfg.Workers = workers
		got, err := KMeans(points, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: restart result differs from serial", workers)
		}
	}
}

func TestBalancedKMeansParallelMatchesSerial(t *testing.T) {
	points, _ := blobs(3, 24, 2, 8)
	cfg := Config{K: 3, Seed: 4, Restarts: 4}
	cfg.Workers = 1
	want, err := BalancedKMeans(points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = runtime.GOMAXPROCS(0)
	got, err := BalancedKMeans(points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("balanced k-means differs between serial and parallel restarts")
	}
}

func TestRestartSeedIndexAddressed(t *testing.T) {
	if restartSeed(42, 0) != 42 {
		t.Fatal("restart 0 must reuse the configured seed")
	}
	seen := map[int64]bool{}
	for r := 0; r < 100; r++ {
		s := restartSeed(42, r)
		if seen[s] {
			t.Fatalf("restart seeds collide at r=%d", r)
		}
		seen[s] = true
	}
}

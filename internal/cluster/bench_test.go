package cluster

import "testing"

func BenchmarkKMeans(b *testing.B) {
	points, _ := blobs(6, 100, 8, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(points, Config{K: 6, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalancedKMeans(b *testing.B) {
	points, _ := blobs(6, 100, 8, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BalancedKMeans(points, Config{K: 6, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouette(b *testing.B) {
	points, labels := blobs(4, 50, 6, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(points, labels, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTSNE(b *testing.B) {
	points, _ := blobs(3, 30, 8, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TSNE(points, TSNEConfig{Iterations: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

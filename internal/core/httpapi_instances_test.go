package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// heldOut is one instance the fixture kept out of Bootstrap for tests to
// admit over HTTP.
type heldOut struct{ ID, Service string }

// instancesFixture serves a bootstrapped runtime whose clock is pinned to
// the training end, so POST bodies without "as_of" resolve against real
// stored history. Returns the server, the registry, the held-out instances
// and the training end.
func instancesFixture(t *testing.T) (*httptest.Server, *obs.Registry, []heldOut, time.Time) {
	t.Helper()
	rt, _, held, trainEnd := admissionFixture(t)
	clock := func() time.Time { return trainEnd }
	reg := obs.NewWithClock(clock)
	srv := httptest.NewServer(HTTPHandlerWithObs(rt, clock, reg))
	t.Cleanup(srv.Close)
	outs := make([]heldOut, len(held))
	for i, inst := range held {
		outs[i] = heldOut{ID: inst.ID, Service: inst.Service}
	}
	return srv, reg, outs, trainEnd
}

func postJSON(t *testing.T, client *http.Client, url string, body string) *http.Response {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func doDelete(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPInstancesMethodNotAllowed(t *testing.T) {
	srv, _, _, _ := instancesFixture(t)
	client := srv.Client()

	resp, err := client.Get(srv.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/instances = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", got)
	}
	if code, _ := decodeEnvelope(t, resp); code != "method_not_allowed" {
		t.Fatalf("code = %q, want method_not_allowed", code)
	}

	resp, err = client.Get(srv.URL + "/v1/instances/some-id")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/instances/some-id = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodDelete {
		t.Fatalf("Allow = %q, want DELETE", got)
	}
	resp.Body.Close()
}

func TestHTTPInstancesBadPayloads(t *testing.T) {
	srv, _, held, _ := instancesFixture(t)
	client := srv.Client()
	url := srv.URL + "/v1/instances"

	cases := []struct {
		name, body, wantCode string
		wantStatus           int
	}{
		{"not json", "{not json", "bad_request", http.StatusBadRequest},
		{"empty object", "{}", "bad_request", http.StatusBadRequest},
		{"missing service", `{"id":"x"}`, "bad_request", http.StatusBadRequest},
		{"bad as_of", `{"id":"x","service":"y","as_of":"yesterday"}`, "bad_request", http.StatusBadRequest},
		{"negative train_weeks", `{"id":"x","service":"y","train_weeks":-1}`, "bad_request", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, client, url, tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if code, _ := decodeEnvelope(t, resp); code != tc.wantCode {
			t.Errorf("%s: code = %q, want %q", tc.name, code, tc.wantCode)
		}
	}

	// Unknown ID on DELETE → 404 envelope.
	resp := doDelete(t, client, url+"/never-admitted")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "unknown_instance" {
		t.Errorf("DELETE unknown code = %q, want unknown_instance", code)
	}

	// Trailing-slash DELETE with no ID → 404 not_found.
	resp = doDelete(t, client, url+"/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE with empty id = %d, want 404", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "not_found" {
		t.Errorf("DELETE with empty id code = %q, want not_found", code)
	}
	_ = held
}

func TestHTTPInstancesAdmitRetire(t *testing.T) {
	srv, _, held, _ := instancesFixture(t)
	client := srv.Client()
	url := srv.URL + "/v1/instances"

	// Admit one held-out instance (the runtime's own clock supplies as_of).
	body, _ := json.Marshal(map[string]string{"id": held[0].ID, "service": held[0].Service})
	resp := postJSON(t, client, url, string(body))
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST = %d, want 201 (body %s)", resp.StatusCode, raw)
	}
	var view instanceView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.ID != held[0].ID || view.Leaf == "" {
		t.Fatalf("admit view = %+v", view)
	}

	// Admitting again conflicts.
	resp = postJSON(t, client, url, string(body))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double POST = %d, want 409", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "already_admitted" {
		t.Fatalf("double POST code = %q", code)
	}

	// Retire it.
	resp = doDelete(t, client, url+"/"+held[0].ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	var gone instanceView
	if err := json.NewDecoder(resp.Body).Decode(&gone); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gone.ID != held[0].ID || gone.Leaf != view.Leaf {
		t.Fatalf("retire view = %+v, want leaf %q", gone, view.Leaf)
	}

	// And it can come back with an explicit as_of.
	resp = postJSON(t, client, url, string(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("re-POST = %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHTTPInstancesSkewedWallClock admits without "as_of" on a server whose
// wall clock sits years past the stored telemetry. The default must be the
// runtime's replay clock, not time.Now() — with the wall clock every window
// would be empty and the whole fleet would look quarantined.
func TestHTTPInstancesSkewedWallClock(t *testing.T) {
	rt, _, held, trainEnd := admissionFixture(t)
	clock := func() time.Time { return trainEnd.Add(10 * 365 * 24 * time.Hour) }
	srv := httptest.NewServer(HTTPHandlerWithObs(rt, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(map[string]string{"id": held[0].ID, "service": held[0].Service})
	resp := postJSON(t, srv.Client(), srv.URL+"/v1/instances", string(body))
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST with skewed wall clock = %d, want 201 (body %s)", resp.StatusCode, raw)
	}
	resp.Body.Close()
}

// TestHTTPInstancesReplayDeterminism drives the same admission sequence
// against two fresh servers: identical placement decisions and identical
// HTTP counter deltas on the per-server registries.
func TestHTTPInstancesReplayDeterminism(t *testing.T) {
	run := func() ([]string, string) {
		srv, reg, held, trainEnd := instancesFixture(t)
		client := srv.Client()
		var leaves []string
		for _, h := range held {
			payload, _ := json.Marshal(map[string]string{
				"id": h.ID, "service": h.Service, "as_of": trainEnd.Format(time.RFC3339),
			})
			resp := postJSON(t, client, srv.URL+"/v1/instances", string(payload))
			if resp.StatusCode != http.StatusCreated {
				t.Fatalf("POST %s = %d", h.ID, resp.StatusCode)
			}
			var view instanceView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			leaves = append(leaves, view.Leaf)
		}
		// One deliberate error so the error counter moves too.
		resp := doDelete(t, client, srv.URL+"/v1/instances/never-admitted")
		resp.Body.Close()

		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return leaves, buf.String()
	}
	leavesA, promA := run()
	leavesB, promB := run()
	if len(leavesA) != len(leavesB) {
		t.Fatalf("decision counts differ: %d vs %d", len(leavesA), len(leavesB))
	}
	for i := range leavesA {
		if leavesA[i] != leavesB[i] {
			t.Fatalf("decision %d diverged: %q vs %q", i, leavesA[i], leavesB[i])
		}
	}
	if promA != promB {
		t.Fatalf("registry expositions diverged:\n--- A\n%s\n--- B\n%s", promA, promB)
	}
}

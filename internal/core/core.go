// Package core is SmoothOperator itself: the end-to-end framework of §3
// (Fig. 7) and §4. It wires the substrates together:
//
//  1. collect instance power traces and build averaged I-traces (Eq. 3/4),
//  2. extract S-traces for the top power-consumer services (Eq. 5),
//  3. compute asynchrony-score vectors (Eq. 6/7),
//  4. cluster instances and place them across the power tree (§3.5),
//  5. evaluate peak reduction, headroom and slack on a held-out test week,
//  6. exploit unlocked headroom with dynamic power profile reshaping (§4),
//  7. keep monitoring and incrementally remapping as workload drifts (§3.6).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/capping"
	"repro/internal/detmap"
	"repro/internal/faults"
	"repro/internal/forecast"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/reshape"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// Config tunes the framework.
type Config struct {
	// TopServices is |B|, the S-trace basis size. 0 means 10.
	TopServices int
	// ClustersPerChild is h/q for the placement clustering. 0 means 2.
	ClustersPerChild int
	// TrainWeeks is how many leading weeks form the training data. 0 means 2
	// (the paper trains on two weeks and tests on the third).
	TrainWeeks int
	// Seed fixes all randomized stages.
	Seed int64
	// OffPeakFraction classifies readings below this fraction of peak as
	// off-peak for slack reporting. 0 means 0.85.
	OffPeakFraction float64
	// Baseline is the placement being displaced; nil means the oblivious
	// service-grouped production baseline.
	Baseline placement.Placer
	// Lconv overrides the learned conversion threshold; 0 means learn it.
	Lconv float64
	// QoSKnee is the per-server load where QoS degrades. 0 means 0.9.
	QoSKnee float64
	// Latency, when non-zero, attaches a queueing latency model to reshape
	// evaluation: ReshapeResult gains per-strategy latency reports, and the
	// QoS knee is derived from the latency SLA when one is set.
	Latency sim.LatencyModel
	// PlaceOnForecast, when true, drives the workload-aware placement with
	// next-week forecast traces (seasonal EWMA + damped trend) instead of
	// the averaged I-traces — proactive planning for trending fleets. The
	// baseline placement and all evaluation stay on the standard data.
	PlaceOnForecast bool
	// Workers bounds the goroutines the pipeline's parallel stages use
	// (scoring, clustering restarts, strategy simulations); 0 means the
	// default (SMOOTHOP_WORKERS or GOMAXPROCS). Results are identical for
	// any worker count.
	Workers int
}

func (c Config) topServices() int {
	if c.TopServices <= 0 {
		return 10
	}
	return c.TopServices
}

func (c Config) trainWeeks() int {
	if c.TrainWeeks <= 0 {
		return 2
	}
	return c.TrainWeeks
}

func (c Config) offPeak() float64 {
	if c.OffPeakFraction <= 0 {
		return 0.85
	}
	return c.OffPeakFraction
}

func (c Config) qosKnee() float64 {
	if c.QoSKnee > 0 {
		return c.QoSKnee
	}
	// Derive the knee from the latency SLA when a model is configured:
	// the highest utilization whose p99 proxy still meets the budget.
	if c.Latency.ServiceTimeMs > 0 && c.Latency.SLAms > 0 {
		if rho := c.Latency.MaxUtilization(); rho > 0 {
			return rho
		}
	}
	return 0.9
}

func (c Config) baseline() placement.Placer {
	if c.Baseline != nil {
		return c.Baseline
	}
	return placement.Oblivious{}
}

// Framework is a configured SmoothOperator instance.
type Framework struct {
	cfg Config
}

// New returns a framework with the given configuration.
func New(cfg Config) *Framework { return &Framework{cfg: cfg} }

// ErrFleetTooShort is returned when the fleet's traces don't cover training
// plus one test week.
var ErrFleetTooShort = errors.New("core: fleet traces shorter than train+test window")

// PlacementResult is the outcome of the placement pipeline on one fleet.
type PlacementResult struct {
	// BaselineTree and OptimizedTree host the same fleet under the baseline
	// and the workload-aware placement.
	BaselineTree, OptimizedTree *powertree.Node
	// TestTraces is the held-out test-week trace per instance; all reports
	// are computed against it.
	TestTraces map[string]timeseries.Series
	// AveragedITraces is the training embedding input (Eq. 4).
	AveragedITraces map[string]timeseries.Series
	// PeakReports is the per-level peak reduction (Fig. 10).
	PeakReports []metrics.LevelPeakReport
	// RPPReductionPct is the leaf-level peak reduction — the headline
	// number that converts into extra hostable servers.
	RPPReductionPct float64
	// BaselineLeafScores and OptimizedLeafScores are per-leaf asynchrony
	// scores under each placement.
	BaselineLeafScores, OptimizedLeafScores map[string]float64
}

// Optimize runs the placement pipeline: averaged I-traces from the training
// weeks drive the workload-aware placement; the baseline placement is built
// from the same data; both are evaluated on the held-out test week.
// The supplied tree must be empty; it is never modified (clones are).
func (f *Framework) Optimize(fleet *workload.Fleet, tree *powertree.Node) (*PlacementResult, error) {
	trainWeeks := f.cfg.trainWeeks()
	avg, err := fleet.AveragedITraces(trainWeeks)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFleetTooShort, err)
	}
	test, err := fleet.SplitWeeks(trainWeeks) // first week after training
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFleetTooShort, err)
	}

	instances := make([]placement.Instance, len(fleet.Instances))
	for i, inst := range fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
	}
	trainFn := placement.TraceFn(workload.SubPowerFn(avg))

	baseTree := tree.Clone()
	if err := f.cfg.baseline().Place(baseTree, instances, trainFn); err != nil {
		return nil, fmt.Errorf("core: baseline placement: %w", err)
	}
	placeFn := trainFn
	if f.cfg.PlaceOnForecast {
		weekLen := len(anyTrace(avg).Values)
		fc := make(map[string]timeseries.Series, len(fleet.Instances))
		for _, inst := range fleet.Instances {
			pred, err := forecast.NextWeek(inst.Trace.Slice(0, trainWeeks*weekLen), forecast.Config{Alpha: 0.5, TrendDamping: 0.5})
			if err != nil {
				return nil, fmt.Errorf("core: forecasting %q: %w", inst.ID, err)
			}
			fc[inst.ID] = pred
		}
		placeFn = placement.TraceFn(workload.SubPowerFn(fc))
	}
	optTree := tree.Clone()
	placer := placement.WorkloadAware{
		TopServices:      f.cfg.topServices(),
		ClustersPerChild: f.cfg.ClustersPerChild,
		Seed:             f.cfg.Seed,
		Workers:          f.cfg.Workers,
	}
	if err := placer.Place(optTree, instances, placeFn); err != nil {
		return nil, fmt.Errorf("core: workload-aware placement: %w", err)
	}

	testFn := powertree.PowerFn(workload.SubPowerFn(test))
	reports, err := metrics.PeakReduction(baseTree, optTree, testFn)
	if err != nil {
		return nil, err
	}
	res := &PlacementResult{
		BaselineTree:    baseTree,
		OptimizedTree:   optTree,
		TestTraces:      test,
		AveragedITraces: avg,
		PeakReports:     reports,
	}
	for _, r := range reports {
		if r.Level == powertree.RPP {
			res.RPPReductionPct = r.ReductionPct
		}
	}
	res.BaselineLeafScores, err = placement.LevelAsynchrony(baseTree, powertree.RPP, placement.TraceFn(workload.SubPowerFn(test)))
	if err != nil {
		return nil, err
	}
	res.OptimizedLeafScores, err = placement.LevelAsynchrony(optTree, powertree.RPP, placement.TraceFn(workload.SubPowerFn(test)))
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ReshapeResult is the outcome of dynamic power profile reshaping on top of
// an optimized placement (§4, Fig. 12–14).
type ReshapeResult struct {
	// Pools: original LC and Batch populations, the conversion pool sized
	// from unlocked headroom, and the throttle-enabled extra pool.
	NLC, NBatch, NConv, NThrottleConv int
	// Lconv is the conversion threshold used.
	Lconv float64
	// Baseline is the pre-SmoothOperator run (original fleet, original
	// traffic). StaticLC, Conversion and ThrottleBoost are the three §4
	// strategies serving grown traffic.
	Baseline, StaticLC, Conversion, ThrottleBoost *sim.Result
	// StaticImp, ConvImp and TBImp compare each strategy to Baseline
	// (Fig. 13's bars).
	StaticImp, ConvImp, TBImp sim.Improvement
	// SlackBudget is the peak-provisioned budget slack is measured against.
	SlackBudget float64
	// AvgSlackReductionPct and OffPeakSlackReductionPct compare
	// ThrottleBoost to Baseline (Fig. 14's bars).
	AvgSlackReductionPct, OffPeakSlackReductionPct float64
	// BaselineLatency and TBLatency are present when the framework was
	// configured with a latency model: the QoS story in milliseconds.
	BaselineLatency, TBLatency *sim.LatencyReport
}

// Reshape sizes a conversion-server fleet from the placement's unlocked
// headroom and simulates the three §4 strategies over the test week.
func (f *Framework) Reshape(fleet *workload.Fleet, pr *PlacementResult) (*ReshapeResult, error) {
	if pr == nil {
		return nil, errors.New("core: nil placement result")
	}
	profiles := fleet.Profiles
	// The batch-capable tier — servers whose work is throughput-oriented and
	// deferrable — covers the Batch class plus the dev/storage long tail
	// that harvesting runtimes (the paper's [53]) use for spare-cycle work.
	nLC, nBatch, nThrottleable := 0, 0, 0
	for _, inst := range fleet.Instances {
		switch inst.Class {
		case workload.LatencyCritical:
			nLC++
		case workload.Batch:
			nBatch++
			nThrottleable++
		case workload.Dev, workload.Storage:
			nBatch++
		}
	}
	if nLC == 0 {
		return nil, errors.New("core: fleet has no latency-critical instances")
	}

	// Headroom fraction unlocked at the leaves sizes the conversion pool:
	// "we are able to host up to 13% more machines".
	headFrac := pr.RPPReductionPct / 100
	if headFrac < 0 {
		headFrac = 0
	}
	// Round up: any positive unlocked headroom hosts at least one server
	// (small test fleets would otherwise round the pool to zero).
	nConv := int(math.Ceil(headFrac * float64(nLC)))

	// The LC service's load trace over training and test windows, in units
	// of one server's guarded capacity. The original fleet is assumed
	// provisioned to run at the guarded level at its observed peak.
	lcService := dominantLCService(fleet)
	prof := profiles[lcService]
	anyTest := anyTrace(pr.TestTraces)
	steps := anyTest.Len()
	trainLoad := workload.LoadTrace(prof, anyTest.Start.AddDate(0, 0, -7*f.cfg.trainWeeks()), anyTest.Step, steps*f.cfg.trainWeeks(), f.cfg.Seed+1)
	testLoad := workload.LoadTrace(prof, anyTest.Start, anyTest.Step, steps, f.cfg.Seed+2)

	qosKnee := f.cfg.qosKnee()
	lconv := f.cfg.Lconv
	if lconv == 0 {
		// Per-server load in training: activity × guarded level (the fleet is
		// sized so that peak activity = guarded load).
		perServer := trainLoad.Scale(qosKnee * 0.95)
		var err error
		lconv, err = reshape.LearnThreshold(perServer, qosKnee, 0.02)
		if err != nil {
			return nil, err
		}
	}

	lcModel := sim.ServerModel{Idle: prof.IdlePower, Peak: prof.PeakPower}
	batchModel := sim.ServerModel{Idle: 140, Peak: 310}
	if bp, ok := profiles["hadoop"]; ok {
		batchModel = sim.ServerModel{Idle: bp.IdlePower, Peak: bp.PeakPower}
	}

	// The throttle-enabled extra pool (e_th) is sized by physics: throttling
	// the Batch-class servers to the floor frequency frees power that hosts
	// extra LC-mode servers during the peak. DC3's small throttleable share
	// is exactly why its extra LC gain is small (§5.2.2). The pool is capped
	// at 10% of the LC fleet: beyond that, throttling would have to run so
	// long the boost repayment never catches up.
	freq := sim.DefaultDVFS
	freedPerBatch := freq.Power(batchModel, 1) - freq.Power(batchModel, 0.7)
	nExtra := 0
	if nConv > 0 && nThrottleable > 0 {
		nExtra = int(math.Floor(float64(nThrottleable) * freedPerBatch / lcModel.Peak))
		if cap := nLC / 10; nExtra > cap {
			nExtra = cap
		}
	}

	mkCfg := func(nConvRun, nExtraRun int, peakServers int, policy sim.Policy) sim.Config {
		load := testLoad.Scale(float64(peakServers) * lconv)
		return sim.Config{
			LCLoad: load,
			NLC:    nLC, NBatch: nBatch,
			NConv: nConvRun, NThrottleConv: nExtraRun,
			LCServer: lcModel, BatchServer: batchModel,
			Freq:   sim.DefaultDVFS,
			Budget: budgetFor(nLC+nConv+nExtra, nBatch, lcModel, batchModel),
			Lconv:  lconv, QoSKnee: qosKnee,
			// Batch queues hold ~10% more work than the fleet's nominal
			// rate; helpers beyond that idle. Small Batch tiers (DC3) are
			// therefore the binding constraint on reshaping gains (§5.2.2).
			BatchWorkCap: 1.1,
			// Parked conversion servers deep-sleep at ~30% of idle; their
			// state lives on disaggregated storage so compute can power down.
			ConvIdlePower: 0.3 * batchModel.Idle,
			Policy:        policy,
		}
	}

	// The four strategy simulations are independent; run them side by side.
	results, err := sim.RunMany([]sim.Config{
		mkCfg(0, 0, nLC, reshape.StaticLC{}),
		mkCfg(nConv, 0, nLC+nConv, reshape.StaticLC{Conv: nConv}),
		mkCfg(nConv, 0, nLC+nConv, reshape.Conversion{NLC: nLC, Pool: nConv, Lconv: lconv}),
		mkCfg(nConv, nExtra, nLC+nConv+nExtra, &reshape.ThrottleBoost{NLC: nLC, NBatch: nThrottleable, Pool: nConv, ExtraPool: nExtra, Lconv: lconv}),
	}, f.cfg.Workers)
	if err != nil {
		return nil, err
	}
	baseline, static, conv, tb := results[0], results[1], results[2], results[3]

	res := &ReshapeResult{
		NLC: nLC, NBatch: nBatch, NConv: nConv, NThrottleConv: nExtra,
		Lconv:    lconv,
		Baseline: baseline, StaticLC: static, Conversion: conv, ThrottleBoost: tb,
		StaticImp: sim.Compare(baseline, static),
		ConvImp:   sim.Compare(baseline, conv),
		TBImp:     sim.Compare(baseline, tb),
	}

	// Slack is measured against a peak-provisioned budget (Challenge 1:
	// budgets are sized for the pre-optimization peak).
	res.SlackBudget = baseline.Power.Peak() * 1.02
	baseAvg, err := metrics.AverageSlack(baseline.Power, res.SlackBudget)
	if err != nil {
		return nil, err
	}
	tbAvg, err := metrics.AverageSlack(tb.Power, res.SlackBudget)
	if err != nil {
		return nil, err
	}
	res.AvgSlackReductionPct = 100 * metrics.Reduction(baseAvg, tbAvg)
	baseOff, errB := metrics.OffPeakSlack(baseline.Power, res.SlackBudget, f.cfg.offPeak())
	tbOff, errT := metrics.OffPeakSlack(tb.Power, res.SlackBudget, f.cfg.offPeak())
	if errB == nil && errT == nil {
		res.OffPeakSlackReductionPct = 100 * metrics.Reduction(baseOff, tbOff)
	}
	if f.cfg.Latency.ServiceTimeMs > 0 {
		baseLat, err := sim.Latency(baseline, f.cfg.Latency)
		if err != nil {
			return nil, err
		}
		tbLat, err := sim.Latency(tb, f.cfg.Latency)
		if err != nil {
			return nil, err
		}
		res.BaselineLatency = &baseLat
		res.TBLatency = &tbLat
	}
	return res, nil
}

// budgetFor provisions for the grown fleet at peak — the capping backstop
// still guards pathological policies, but well-behaved runs fit.
func budgetFor(nLC, nBatch int, lc, batch sim.ServerModel) float64 {
	return float64(nLC)*lc.Peak + float64(nBatch)*batch.Peak*1.1
}

// dominantLCService returns the largest latency-critical power consumer.
func dominantLCService(fleet *workload.Fleet) string {
	for _, sp := range fleet.PowerBreakdown() {
		if sp.Class == workload.LatencyCritical {
			return sp.Service
		}
	}
	// No LC service: fall back to the top consumer.
	return fleet.PowerBreakdown()[0].Service
}

func anyTrace(m map[string]timeseries.Series) timeseries.Series {
	// Every caller only needs shape (step, length), but pick the smallest
	// key anyway so the choice is reproducible.
	_, s, _ := detmap.First(m)
	return s
}

// DriftReport is what the continuous monitor (§3.6) observes.
type DriftReport struct {
	// WorstNode is the leaf with the lowest asynchrony score.
	WorstNode string
	// WorstScore is its score.
	WorstScore float64
	// SumOfPeaks is the current leaf-level sum of peaks.
	SumOfPeaks float64
	// Swaps applied by remapping (empty if none were needed).
	Swaps []placement.Swap

	// Degradation context, filled by Runtime.Tick (zero for plain Adapt):
	// Quarantined lists the instances scored from service reference traces
	// because their own telemetry fell below the coverage floor.
	Quarantined []string
	// ActiveTrips are the injected breaker-trip windows overlapping the
	// tick's telemetry window.
	ActiveTrips []faults.TripWindow
	// BreakerTrips are the violations found when breakers were re-checked
	// at trip-reduced budgets.
	BreakerTrips []powertree.BreakerTrip
	// EmergencyThrottles are the shedding directives the emergency capping
	// path issued this tick.
	EmergencyThrottles []capping.Throttle
}

// Adapt monitors a placed tree against fresh traces and applies incremental
// swap remapping when fragmentation re-appears (§3.6). scoreFloor is the
// asynchrony score below which a node is considered fragmented (1.0 disables
// remapping only for perfectly synchronous nodes; the paper leaves the
// trigger operational — 1.2–1.5 works well in practice).
func (f *Framework) Adapt(tree *powertree.Node, fresh map[string]timeseries.Series, scoreFloor float64, maxSwaps int) (*DriftReport, error) {
	return f.AdaptWithPolicy(tree, fresh, scoreFloor, maxSwaps, placement.PolicyConfig{})
}

// AdaptWithPolicy is Adapt with the redesigned placement policy options
// threaded through to the remapping step: when policy.Demands is set, swaps
// additionally respect every capacity dimension the tree declares (see
// placement.RemapConfig.Policy). The zero PolicyConfig is plain Adapt.
func (f *Framework) AdaptWithPolicy(tree *powertree.Node, fresh map[string]timeseries.Series, scoreFloor float64, maxSwaps int, policy placement.PolicyConfig) (*DriftReport, error) {
	traceFn := placement.TraceFn(workload.SubPowerFn(fresh))
	scores, err := placement.LevelAsynchrony(tree, powertree.RPP, traceFn)
	if err != nil {
		return nil, err
	}
	rep := &DriftReport{WorstScore: math.Inf(1)}
	for _, node := range detmap.SortedKeys(scores) {
		if s := scores[node]; s < rep.WorstScore {
			rep.WorstScore, rep.WorstNode = s, node
		}
	}
	rep.SumOfPeaks, err = tree.SumOfPeaks(powertree.RPP, powertree.PowerFn(workload.SubPowerFn(fresh)))
	if err != nil {
		return nil, err
	}
	if rep.WorstScore < scoreFloor {
		rep.Swaps, err = placement.Remap(tree, traceFn, placement.RemapConfig{MaxSwaps: maxSwaps, Policy: policy})
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

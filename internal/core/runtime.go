package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/capping"
	"repro/internal/detmap"
	"repro/internal/faults"
	"repro/internal/placement"
	"repro/internal/plan"
	"repro/internal/powertree"
	"repro/internal/timeseries"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Runtime is SmoothOperator operated as a continuously-running service
// (Fig. 7 plus §3.6): power telemetry streams into a trace store, an initial
// workload-aware placement is bootstrapped from collected history, and a
// periodic tick re-evaluates fragmentation on fresh data, remapping
// incrementally when drift appears.
//
// The runtime degrades gracefully instead of failing when telemetry turns
// bad: traces are graded (tracestore.Quality), instances whose raw coverage
// falls below the quarantine floor are scored from a service-level reference
// trace instead of their own repaired trace, transient store errors are
// retried with bounded backoff, and breaker violations during injected trip
// windows escalate into an emergency capping throttle that releases when the
// trip clears.
type Runtime struct {
	fw    *Framework
	store *tracestore.Store
	tree  *powertree.Node

	// scoreFloor triggers remapping when any leaf's asynchrony score falls
	// below it; maxSwaps bounds each repair.
	scoreFloor float64
	maxSwaps   int
	// minCoverage is the quarantine floor on raw trace coverage.
	minCoverage float64
	// retries bounds ingest retries on transient store errors; backoff is
	// the first retry's wait (doubling each attempt).
	retries int
	backoff time.Duration

	// faults, when set, perturbs every reading on its way into the store.
	faults *faults.Injector
	// placeCfg carries the configured placement policy options; the runtime
	// overlays its own demand ledger on the config's resolver when building
	// admission views (see placementCfg). Never modified after construction.
	placeCfg placement.PolicyConfig
	// capper is the emergency throttle runtime; created at Bootstrap when
	// fault injection is configured.
	capper *capping.Controller
	// sleep is injectable so tests don't wait out real backoff.
	sleep func(time.Duration)

	// mu guards every field that changes after construction: the HTTP layer
	// calls the admission entry points and the read accessors from request
	// goroutines while Bootstrap/Tick mutate the same state. The guarded
	// fields are annotated below and the contract is machine-checked by the
	// guardedby analyzer (see internal/analysis).
	mu sync.Mutex

	// services maps instance → service, learned at Bootstrap; it names the
	// reference-trace pool a quarantined instance falls back to.
	services map[string]string //smoothop:guardedby mu
	// demands is the runtime's resource-demand ledger: the validated demand
	// vector of every placed instance that declared one (at Bootstrap or
	// admission). It outlives the cached admission view, so rebuilt views
	// re-learn demands through placementCfg's resolver. The map is allocated
	// once and mutated in place — placementCfg's closure captures it.
	demands map[string]powertree.ResourceVector //smoothop:guardedby mu
	// quality and quarantined reflect the most recent Bootstrap or Tick.
	quality     map[string]tracestore.Quality //smoothop:guardedby mu
	quarantined []string                      //smoothop:guardedby mu
	// emergency tracks nodes currently under an emergency cap; lastTrips is
	// the injected trip windows seen by the latest tick.
	emergency map[string]bool     //smoothop:guardedby mu
	lastTrips []faults.TripWindow //smoothop:guardedby mu

	placed  bool           //smoothop:guardedby mu
	history []*DriftReport //smoothop:guardedby mu
	// evalAsOf is the runtime's own clock: the asOf of the latest Bootstrap
	// or Tick. Admissions that do not name a time use it, so callers follow
	// the replayed telemetry rather than the wall clock.
	evalAsOf time.Time //smoothop:guardedby mu

	// traces is the latest Bootstrap/Tick scoring view (references filled),
	// kept for fragmentation reporting between admissions.
	traces map[string]timeseries.Series //smoothop:guardedby mu
	// online is the lazily-built admission view over the live tree; nil
	// until the first AdmitInstance and invalidated by Tick (remapping moves
	// instances). onlineTraces/refPool/refAll are its trace view and the
	// healthy reference pools; onlineAsOf/onlineWeeks key the cache.
	online       *placement.Online              //smoothop:guardedby mu
	onlineTraces map[string]timeseries.Series   //smoothop:guardedby mu
	refPool      map[string][]timeseries.Series //smoothop:guardedby mu
	refAll       []timeseries.Series            //smoothop:guardedby mu
	onlineAsOf   time.Time                      //smoothop:guardedby mu
	onlineWeeks  int                            //smoothop:guardedby mu

	// fragAgg carries the fragmentation-gauge aggregation forward
	// incrementally: admissions and retirements mark only the touched leaf
	// dirty instead of re-aggregating the whole tree. fragViewOnline records
	// which trace view (admission view vs Bootstrap/Tick traces) the
	// aggregator's PowerFn captured, so a view switch forces a rebuild.
	fragAgg        *powertree.Aggregator //smoothop:guardedby mu
	fragViewOnline bool                  //smoothop:guardedby mu

	// planSnap is the cached what-if planning snapshot, shared by concurrent
	// /v1/plan queries between placement mutations (see plan.go).
	planSnap *plan.Snapshot //smoothop:guardedby mu
}

// RuntimeConfig tunes the runtime. It is a value handed over once at
// NewRuntime and never modified afterwards.
//
// smoothop:immutable
type RuntimeConfig struct {
	// ScoreFloor is the leaf asynchrony score below which the monitor
	// remaps. 0 means 1.2; negative is rejected with ErrBadScoreFloor.
	ScoreFloor float64
	// MaxSwapsPerTick bounds each incremental repair. 0 means 32; negative
	// is rejected with ErrBadMaxSwaps.
	MaxSwapsPerTick int
	// MinCoverage is the raw-coverage fraction below which an instance is
	// quarantined and scored from its service's reference trace. 0 means
	// 0.5 (the tracestore GradePoor threshold); values outside [0, 1) are
	// rejected with ErrBadMinCoverage.
	MinCoverage float64
	// IngestRetries is how many times a transient store failure
	// (tracestore.ErrTransient) is retried before Ingest gives up. 0 means
	// 3; negative is rejected with ErrBadRetries.
	IngestRetries int
	// RetryBackoff is the wait before the first ingest retry, doubling each
	// attempt. 0 means no wait (right for the in-memory store); negative is
	// rejected with ErrBadRetries.
	RetryBackoff time.Duration
	// Faults, when non-nil, injects telemetry and infrastructure faults
	// into the runtime: readings pass through the injector on Ingest, and
	// its trip windows drive the emergency capping path at Tick.
	Faults *faults.Injector
	// Placement carries the redesigned placement policy options (kind, seed,
	// FARB weights, demand resolver) used for admission views and tick-time
	// remapping. The zero value is the paper's asynchrony policy with no
	// demand model — bit-identical to the power-only runtime. Demands
	// supplied at admission time take precedence over the configured
	// resolver. Unknown kinds and invalid weights are rejected at NewRuntime
	// with placement.ErrUnknownPolicyKind / score.ErrBadWeights.
	Placement placement.PolicyConfig
}

// Errors returned by the runtime.
var (
	ErrNotPlaced      = errors.New("core: runtime has no placement yet (call Bootstrap)")
	ErrAlreadyPlaced  = errors.New("core: runtime already bootstrapped")
	ErrBadScoreFloor  = errors.New("core: ScoreFloor must not be negative")
	ErrBadMaxSwaps    = errors.New("core: MaxSwapsPerTick must not be negative")
	ErrBadMinCoverage = errors.New("core: MinCoverage must be in [0, 1)")
	ErrBadRetries     = errors.New("core: ingest retry settings must not be negative")
	ErrAllQuarantined = errors.New("core: every instance quarantined — no healthy trace to reference")
)

// NewRuntime assembles a runtime around a framework, a telemetry store and
// an empty power tree.
func NewRuntime(fw *Framework, store *tracestore.Store, tree *powertree.Node, cfg RuntimeConfig) (*Runtime, error) {
	if fw == nil || store == nil || tree == nil {
		return nil, errors.New("core: runtime needs a framework, a store and a tree")
	}
	if tree.InstanceCount() != 0 {
		return nil, errors.New("core: runtime tree must start empty")
	}
	if cfg.ScoreFloor < 0 {
		return nil, fmt.Errorf("%w: got %v", ErrBadScoreFloor, cfg.ScoreFloor)
	}
	if cfg.MaxSwapsPerTick < 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadMaxSwaps, cfg.MaxSwapsPerTick)
	}
	if cfg.MinCoverage < 0 || cfg.MinCoverage >= 1 {
		return nil, fmt.Errorf("%w: got %v", ErrBadMinCoverage, cfg.MinCoverage)
	}
	if cfg.IngestRetries < 0 {
		return nil, fmt.Errorf("%w: IngestRetries %d", ErrBadRetries, cfg.IngestRetries)
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("%w: RetryBackoff %v", ErrBadRetries, cfg.RetryBackoff)
	}
	if _, err := placement.NewPolicy(cfg.Placement); err != nil {
		return nil, fmt.Errorf("core: placement policy: %w", err)
	}
	floor := cfg.ScoreFloor
	if floor == 0 {
		floor = 1.2
	}
	swaps := cfg.MaxSwapsPerTick
	if swaps == 0 {
		swaps = 32
	}
	minCov := cfg.MinCoverage
	if minCov == 0 {
		minCov = 0.5
	}
	retries := cfg.IngestRetries
	if retries == 0 {
		retries = 3
	}
	return &Runtime{
		fw: fw, store: store, tree: tree,
		scoreFloor: floor, maxSwaps: swaps,
		minCoverage: minCov, retries: retries, backoff: cfg.RetryBackoff,
		faults:    cfg.Faults,
		placeCfg:  cfg.Placement,
		sleep:     time.Sleep,
		services:  make(map[string]string),
		demands:   make(map[string]powertree.ResourceVector),
		quality:   make(map[string]tracestore.Quality),
		emergency: make(map[string]bool),
	}, nil
}

// Ingest forwards one power reading into the store. With fault injection
// configured the reading first passes through the injector — it may be
// dropped, corrupted, skewed or delayed — and whatever the injector delivers
// is appended. Transient store failures are retried up to the configured
// bound with doubling backoff before surfacing.
func (r *Runtime) Ingest(id string, at time.Time, watts float64) error {
	if r.faults == nil {
		return r.appendWithRetry(id, at, watts)
	}
	for _, rd := range r.faults.Feed(id, at, watts) {
		if err := r.appendWithRetry(rd.ID, rd.At, rd.Watts); err != nil {
			return err
		}
	}
	return nil
}

// FlushFaults drains the injector's reorder buffer into the store — call it
// once at the end of a replay so delayed readings are not lost. Without
// fault injection it is a no-op.
func (r *Runtime) FlushFaults() error {
	if r.faults == nil {
		return nil
	}
	for _, rd := range r.faults.Flush() {
		if err := r.appendWithRetry(rd.ID, rd.At, rd.Watts); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runtime) appendWithRetry(id string, at time.Time, watts float64) error {
	wait := r.backoff
	for attempt := 0; ; attempt++ {
		err := r.storeAppend(id, at, watts, attempt)
		if err == nil {
			obsIngestSamples.Inc()
			return nil
		}
		if !errors.Is(err, tracestore.ErrTransient) || attempt >= r.retries {
			return err
		}
		obsIngestRetries.Inc()
		if wait > 0 {
			r.sleep(wait)
			wait *= 2
		}
	}
}

func (r *Runtime) storeAppend(id string, at time.Time, watts float64, attempt int) error {
	if r.faults != nil && r.faults.TransientAppendFailure(id, at, attempt) {
		return fmt.Errorf("core: ingesting %q at %v: %w", id, at, tracestore.ErrTransient)
	}
	return r.store.Append(id, at, watts)
}

// Tree exposes the current (placed) tree for inspection.
func (r *Runtime) Tree() *powertree.Node { return r.tree }

// Placed reports whether Bootstrap has run.
func (r *Runtime) Placed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.placed
}

// History returns a snapshot of the drift reports of every tick so far.
func (r *Runtime) History() []*DriftReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*DriftReport(nil), r.history...)
}

// Quarantined returns the instances the latest Bootstrap or Tick scored
// from reference traces instead of their own telemetry, sorted.
func (r *Runtime) Quarantined() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.quarantined...)
}

// InstanceQuality reports the trace quality the latest Bootstrap or Tick
// observed for an instance.
func (r *Runtime) InstanceQuality(id string) (tracestore.Quality, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	q, ok := r.quality[id]
	return q, ok
}

// ActiveTrips returns the injected breaker-trip windows that overlapped the
// latest tick's window.
func (r *Runtime) ActiveTrips() []faults.TripWindow {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]faults.TripWindow(nil), r.lastTrips...)
}

// EmergencyNodes returns the nodes currently held under an emergency cap,
// sorted.
func (r *Runtime) EmergencyNodes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return detmap.SortedKeys(r.emergency)
}

// Bootstrap computes averaged I-traces from the store's history ending at
// asOf and places the given instances workload-aware. It can only run once.
// Instances whose history is missing or below the quarantine floor are
// placed using their service's reference trace (the mean of healthy peers)
// rather than failing the whole placement.
func (r *Runtime) Bootstrap(instances []placement.Instance, asOf time.Time, trainWeeks int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.placed {
		return ErrAlreadyPlaced
	}
	if trainWeeks < 1 {
		trainWeeks = r.fw.cfg.trainWeeks()
	}
	for _, inst := range instances {
		r.services[inst.ID] = inst.Service
		// Demands enter the runtime's ledger here; the batch placer itself is
		// power-only, so capacity dimensions bind at admission and remap time.
		if len(inst.Demands) > 0 {
			if err := inst.Demands.Validate(); err != nil {
				return fmt.Errorf("core: bootstrap demands for %q: %w", inst.ID, err)
			}
			r.demands[inst.ID] = inst.Demands.Clone()
		}
	}
	avg := make(map[string]timeseries.Series, len(instances))
	quality := make(map[string]tracestore.Quality, len(instances))
	var quarantined []string
	byService := make(map[string][]timeseries.Series)
	var healthy []timeseries.Series
	for _, inst := range instances {
		tr, q, err := r.store.AveragedITraceQuality(inst.ID, asOf, trainWeeks)
		if errors.Is(err, tracestore.ErrUnknownInstance) {
			// Never reported at all (e.g. a whole-window dropout): treat as
			// an empty window rather than failing the placement.
			q, err = tracestore.Quality{Grade: tracestore.GradeNoData}, nil
		}
		if err != nil {
			return fmt.Errorf("core: bootstrap trace for %q: %w", inst.ID, err)
		}
		quality[inst.ID] = q
		if q.Grade == tracestore.GradeNoData || q.Coverage < r.minCoverage {
			quarantined = append(quarantined, inst.ID)
			continue
		}
		avg[inst.ID] = tr
		byService[inst.Service] = append(byService[inst.Service], tr)
		healthy = append(healthy, tr)
	}
	if err := r.fillReferences(avg, quarantined, byService, healthy); err != nil {
		return fmt.Errorf("core: bootstrap: %w", err)
	}
	placer := placement.WorkloadAware{
		TopServices:      r.fw.cfg.topServices(),
		ClustersPerChild: r.fw.cfg.ClustersPerChild,
		Seed:             r.fw.cfg.Seed,
	}
	lookup := placement.TraceFn(func(id string) (timeseries.Series, bool) {
		tr, ok := avg[id]
		return tr, ok
	})
	if err := placer.Place(r.tree, instances, lookup); err != nil {
		return fmt.Errorf("core: bootstrap placement: %w", err)
	}
	r.quality = quality
	r.quarantined = quarantined
	r.traces = avg
	r.rebuildFragView(avg, false)
	obsQuarantined.Set(float64(len(quarantined)))
	if r.faults != nil {
		capper, err := capping.New(r.tree, capping.Config{SustainSteps: 1})
		if err != nil {
			return err
		}
		r.capper = capper
	}
	r.placed = true
	r.evalAsOf = asOf
	r.invalidatePlanSnapshot()
	return nil
}

// fillReferences gives every quarantined instance a reference trace: the
// mean of its service's healthy peers, falling back to the fleet-wide mean
// when the whole service is dark. No healthy trace anywhere is
// ErrAllQuarantined.
//
// smoothop:locked mu
func (r *Runtime) fillReferences(dst map[string]timeseries.Series, quarantined []string, byService map[string][]timeseries.Series, healthy []timeseries.Series) error {
	for _, id := range quarantined {
		ref, ok := meanSeries(byService[r.services[id]])
		if !ok {
			ref, ok = meanSeries(healthy)
		}
		if !ok {
			return ErrAllQuarantined
		}
		dst[id] = ref
		obsFallbackTraces.Inc()
	}
	return nil
}

// despike rejects single-slot impulses from a materialised trace: a sample
// more than twice the larger of its two neighbours is a sensor glitch, not
// workload — genuine power peaks are broad at the store's sampling rates —
// and is clamped to that neighbour. The filter is the identity on clean
// traces (no smooth signal doubles in one slot), so scoring clean and
// faulted telemetry stays comparable.
func despike(tr timeseries.Series) timeseries.Series {
	v := tr.Values
	if len(v) < 3 {
		return tr
	}
	cleaned := append([]float64(nil), v...)
	for i := range v {
		var m float64
		switch i {
		case 0:
			m = v[1]
		case len(v) - 1:
			m = v[len(v)-2]
		default:
			m = math.Max(v[i-1], v[i+1])
		}
		if cleaned[i] > 2*m {
			cleaned[i] = m
		}
	}
	return timeseries.New(tr.Start, tr.Step, cleaned)
}

// meanSeries folds same-shaped traces into their pointwise mean.
func meanSeries(traces []timeseries.Series) (timeseries.Series, bool) {
	if len(traces) == 0 {
		return timeseries.Series{}, false
	}
	n := traces[0].Len()
	vals := make([]float64, n)
	for _, tr := range traces {
		if tr.Len() != n {
			return timeseries.Series{}, false
		}
		for i, v := range tr.Values {
			vals[i] += v
		}
	}
	for i := range vals {
		vals[i] /= float64(len(traces))
	}
	return timeseries.New(traces[0].Start, traces[0].Step, vals), true
}

// Tick evaluates the placement against the telemetry window [asOf−window,
// asOf) and remaps if fragmentation re-appeared. The resulting drift report
// is appended to the history and returned.
//
// Degradation semantics: every instance's window is graded, instances below
// the quarantine floor are scored from their service's reference trace, and
// when injected breaker-trip windows overlap the tick the tree's breakers
// are re-checked at the reduced budgets — violations escalate into an
// emergency capping throttle that releases once the trip clears.
func (r *Runtime) Tick(asOf time.Time, window time.Duration) (*DriftReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.placed {
		return nil, ErrNotPlaced
	}
	timer := obsTickSpan.Start()
	if window <= 0 {
		window = 7 * 24 * time.Hour
	}
	from := asOf.Add(-window)
	fresh := make(map[string]timeseries.Series)
	quality := make(map[string]tracestore.Quality)
	var quarantined []string
	byService := make(map[string][]timeseries.Series)
	var healthy []timeseries.Series
	for _, id := range r.tree.AllInstances() {
		tr, q, err := r.store.SnapshotQuality(id, from, asOf)
		if err != nil {
			return nil, fmt.Errorf("core: tick snapshot for %q: %w", id, err)
		}
		quality[id] = q
		if q.Grade == tracestore.GradeNoData || q.Coverage < r.minCoverage {
			quarantined = append(quarantined, id)
			continue
		}
		tr = despike(tr)
		fresh[id] = tr
		byService[r.services[id]] = append(byService[r.services[id]], tr)
		healthy = append(healthy, tr)
	}
	if err := r.fillReferences(fresh, quarantined, byService, healthy); err != nil {
		return nil, fmt.Errorf("core: tick: %w", err)
	}
	rep, err := r.fw.AdaptWithPolicy(r.tree, fresh, r.scoreFloor, r.maxSwaps, r.placementCfg())
	if err != nil {
		return nil, err
	}
	rep.Quarantined = quarantined
	r.quality = quality
	r.quarantined = quarantined
	obsQuarantined.Set(float64(len(quarantined)))
	// The remap may have moved instances between leaves. Instead of dropping
	// the cached admission view wholesale, resync only the swapped leaves
	// (no swaps means the placement is untouched and the view stays valid
	// as-is); the gauges are refreshed from the tick's fresh window.
	r.retargetOnline(rep.Swaps)
	r.traces = fresh
	r.evalAsOf = asOf
	r.rebuildFragView(fresh, false)
	r.invalidatePlanSnapshot()

	if err := r.emergencyStep(rep, from, asOf, fresh); err != nil {
		return nil, err
	}

	r.history = append(r.history, rep)
	obsTicks.Inc()
	obsTickSwaps.Add(uint64(len(rep.Swaps)))
	timer.End()
	return rep, nil
}

// retargetOnline reconciles the cached admission view with the tree after a
// tick's remap. With no swaps the placement is unchanged and the view is
// kept untouched; otherwise only the swapped leaves are resynced (their
// residents' traces are already in the view's trace map — swaps move
// existing residents). Any reconciliation failure — a swapped leaf that
// cannot be found, a resident the view cannot resolve — drops the view
// wholesale, restoring the old rebuild-on-next-admission behaviour.
//
// The retained view stays keyed at its original (onlineAsOf, onlineWeeks)
// window: its traces ARE that window's telemetry, so retirements and
// explicitly windowed admissions reuse it immediately, while a zero-asOf
// admission after the tick re-keys to the new evalAsOf and rebuilds.
//
// smoothop:locked mu
func (r *Runtime) retargetOnline(swaps []placement.Swap) {
	if r.online == nil || len(swaps) == 0 {
		return
	}
	seen := make(map[string]bool, 2*len(swaps))
	var leaves []*powertree.Node
	for _, sw := range swaps {
		for _, name := range [2]string{sw.NodeA, sw.NodeB} {
			if seen[name] {
				continue
			}
			seen[name] = true
			leaf := r.tree.Find(name)
			if leaf == nil {
				r.dropOnline()
				return
			}
			leaves = append(leaves, leaf)
		}
	}
	if err := r.online.Resync(leaves...); err != nil {
		r.dropOnline()
		return
	}
	obsOnlineResyncs.Inc()
}

// dropOnline discards the cached admission view; the next AdmitInstance
// rebuilds it from the store.
//
// smoothop:locked mu
func (r *Runtime) dropOnline() {
	r.online = nil
	r.onlineTraces = nil
	obsOnlineDrops.Inc()
}

// emergencyStep runs the injected-trip escalation path: check breakers at
// trip-reduced budgets and drive the capping controller. It fills the
// report's ActiveTrips, BreakerTrips and EmergencyThrottles.
//
// smoothop:locked mu
func (r *Runtime) emergencyStep(rep *DriftReport, from, asOf time.Time, fresh map[string]timeseries.Series) error {
	if r.faults == nil || r.capper == nil {
		r.lastTrips = nil
		return nil
	}
	trips := r.faults.TripsOverlapping(from, asOf)
	r.lastTrips = trips
	rep.ActiveTrips = trips

	// The lowest backup-feed fraction wins when windows overlap on a node.
	factor := make(map[string]float64)
	for _, tp := range trips {
		if f, ok := factor[tp.Node]; !ok || tp.Budget() < f {
			factor[tp.Node] = tp.Budget()
		}
	}
	if len(factor) > 0 {
		breakerTrips, err := r.breakersUnder(factor, fresh)
		if err != nil {
			return err
		}
		rep.BreakerTrips = breakerTrips
		obsBreakerTrips.Add(uint64(len(breakerTrips)))
	}

	// Step the capper when budgets are reduced, or when a previous tick left
	// caps armed and the trip has since cleared (so they can release).
	if len(factor) == 0 && len(r.emergency) == 0 {
		return nil
	}
	nominal := make(map[string]float64)
	r.tree.Walk(func(n *powertree.Node) {
		if _, ok := factor[n.Name]; ok {
			nominal[n.Name] = n.Budget
		}
	})
	var override func(node string) (float64, bool)
	if len(factor) > 0 {
		override = func(node string) (float64, bool) {
			f, ok := factor[node]
			if !ok {
				return 0, false
			}
			return nominal[node] * f, true
		}
	}
	throttles, events, err := r.capper.StepWithBudgets(peakReader(fresh), override)
	if err != nil {
		return err
	}
	rep.EmergencyThrottles = throttles
	obsEmergencyThrottles.Add(uint64(len(throttles)))
	for _, ev := range events {
		if ev.Armed {
			r.emergency[ev.Node] = true
		} else {
			delete(r.emergency, ev.Node)
		}
	}
	return nil
}

// breakersUnder re-checks the tree's breakers with tripped nodes scaled to
// their backup-feed budgets, restoring the nominal budgets afterwards.
func (r *Runtime) breakersUnder(factor map[string]float64, fresh map[string]timeseries.Series) ([]powertree.BreakerTrip, error) {
	saved := make(map[string]float64, len(factor))
	r.tree.Walk(func(n *powertree.Node) {
		if f, ok := factor[n.Name]; ok {
			saved[n.Name] = n.Budget
			n.Budget *= f
		}
	})
	defer r.tree.Walk(func(n *powertree.Node) {
		if b, ok := saved[n.Name]; ok {
			n.Budget = b
		}
	})
	return r.tree.CheckBreakers(powertree.PowerFn(workload.SubPowerFn(fresh)), 2*r.store.Step())
}

// peakReader views a window's traces as capping state: an instance draws
// its window peak and can be throttled to half of it; everything is
// backend-class (the runtime has no workload-class channel yet).
func peakReader(fresh map[string]timeseries.Series) capping.Reader {
	return func(id string) (capping.InstanceState, bool) {
		tr, ok := fresh[id]
		if !ok || tr.Len() == 0 {
			return capping.InstanceState{}, false
		}
		p := tr.Peak()
		return capping.InstanceState{Power: p, MinPower: 0.5 * p, Priority: capping.PriorityBackend}, true
	}
}

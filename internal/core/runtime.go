package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/timeseries"
	"repro/internal/tracestore"
)

// Runtime is SmoothOperator operated as a continuously-running service
// (Fig. 7 plus §3.6): power telemetry streams into a trace store, an initial
// workload-aware placement is bootstrapped from collected history, and a
// periodic tick re-evaluates fragmentation on fresh data, remapping
// incrementally when drift appears.
type Runtime struct {
	fw    *Framework
	store *tracestore.Store
	tree  *powertree.Node

	// scoreFloor triggers remapping when any leaf's asynchrony score falls
	// below it; maxSwaps bounds each repair.
	scoreFloor float64
	maxSwaps   int

	placed  bool
	history []*DriftReport
}

// RuntimeConfig tunes the runtime.
type RuntimeConfig struct {
	// ScoreFloor is the leaf asynchrony score below which the monitor
	// remaps. 0 means 1.2.
	ScoreFloor float64
	// MaxSwapsPerTick bounds each incremental repair. 0 means 32.
	MaxSwapsPerTick int
}

// Errors returned by the runtime.
var (
	ErrNotPlaced     = errors.New("core: runtime has no placement yet (call Bootstrap)")
	ErrAlreadyPlaced = errors.New("core: runtime already bootstrapped")
)

// NewRuntime assembles a runtime around a framework, a telemetry store and
// an empty power tree.
func NewRuntime(fw *Framework, store *tracestore.Store, tree *powertree.Node, cfg RuntimeConfig) (*Runtime, error) {
	if fw == nil || store == nil || tree == nil {
		return nil, errors.New("core: runtime needs a framework, a store and a tree")
	}
	if tree.InstanceCount() != 0 {
		return nil, errors.New("core: runtime tree must start empty")
	}
	floor := cfg.ScoreFloor
	if floor <= 0 {
		floor = 1.2
	}
	swaps := cfg.MaxSwapsPerTick
	if swaps <= 0 {
		swaps = 32
	}
	return &Runtime{fw: fw, store: store, tree: tree, scoreFloor: floor, maxSwaps: swaps}, nil
}

// Ingest forwards one power reading into the store.
func (r *Runtime) Ingest(id string, at time.Time, watts float64) error {
	if err := r.store.Append(id, at, watts); err != nil {
		return err
	}
	obsIngestSamples.Inc()
	return nil
}

// Tree exposes the current (placed) tree for inspection.
func (r *Runtime) Tree() *powertree.Node { return r.tree }

// History returns the drift reports of every tick so far.
func (r *Runtime) History() []*DriftReport { return r.history }

// Bootstrap computes averaged I-traces from the store's history ending at
// asOf and places the given instances workload-aware. It can only run once.
func (r *Runtime) Bootstrap(instances []placement.Instance, asOf time.Time, trainWeeks int) error {
	if r.placed {
		return ErrAlreadyPlaced
	}
	if trainWeeks < 1 {
		trainWeeks = r.fw.cfg.trainWeeks()
	}
	avg := make(map[string]timeseries.Series, len(instances))
	for _, inst := range instances {
		tr, err := r.store.AveragedITrace(inst.ID, asOf, trainWeeks)
		if err != nil {
			return fmt.Errorf("core: bootstrap trace for %q: %w", inst.ID, err)
		}
		avg[inst.ID] = tr
	}
	placer := placement.WorkloadAware{
		TopServices:      r.fw.cfg.topServices(),
		ClustersPerChild: r.fw.cfg.ClustersPerChild,
		Seed:             r.fw.cfg.Seed,
	}
	lookup := placement.TraceFn(func(id string) (timeseries.Series, bool) {
		tr, ok := avg[id]
		return tr, ok
	})
	if err := placer.Place(r.tree, instances, lookup); err != nil {
		return fmt.Errorf("core: bootstrap placement: %w", err)
	}
	r.placed = true
	return nil
}

// Tick evaluates the placement against the telemetry window [asOf−window,
// asOf) and remaps if fragmentation re-appeared. The resulting drift report
// is appended to the history and returned.
func (r *Runtime) Tick(asOf time.Time, window time.Duration) (*DriftReport, error) {
	if !r.placed {
		return nil, ErrNotPlaced
	}
	timer := obsTickSpan.Start()
	if window <= 0 {
		window = 7 * 24 * time.Hour
	}
	fresh := make(map[string]timeseries.Series)
	for _, id := range r.tree.AllInstances() {
		tr, err := r.store.Snapshot(id, asOf.Add(-window), asOf)
		if err != nil {
			return nil, fmt.Errorf("core: tick snapshot for %q: %w", id, err)
		}
		fresh[id] = tr
	}
	rep, err := r.fw.Adapt(r.tree, fresh, r.scoreFloor, r.maxSwaps)
	if err != nil {
		return nil, err
	}
	r.history = append(r.history, rep)
	obsTicks.Inc()
	obsTickSwaps.Add(uint64(len(rep.Swaps)))
	timer.End()
	return rep, nil
}

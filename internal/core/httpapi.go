package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/plan"
	"repro/internal/powertree"
)

// HTTPHandler exposes a runtime's state over HTTP for dashboards and
// debugging. The API is versioned under /v1/:
//
//	GET    /v1/health          — liveness plus degradation state: ok|degraded,
//	                             quarantined instances, active trip windows,
//	                             emergency-capped nodes
//	GET    /v1/status          — placement summary: instance count, leaves,
//	                             tick count
//	GET    /v1/tree            — the placed power tree as JSON
//	                             (powertree.Save format)
//	GET    /v1/history         — drift reports from every tick
//	GET    /v1/metrics         — the obs registry in Prometheus text format
//	GET    /v1/fragmentation   — per-level stranded-headroom rows: power
//	                             first, then one row per (level, capacity
//	                             dimension) wherever the tree declares
//	                             non-power capacities
//	POST   /v1/instances       — admit one instance via online placement;
//	                             body {"id","service"} plus optional
//	                             "as_of" (RFC 3339), "train_weeks", and
//	                             "demands" (a {dimension: amount} resource
//	                             vector checked against node capacities)
//	DELETE /v1/instances/{id}  — retire a placed instance
//	POST   /v1/plan            — evaluate a what-if query (plan.Query) on a
//	                             snapshot of the current placement; kinds:
//	                             replace_service, add_instances, trip_breaker
//
// Errors are a uniform JSON envelope: {"error":{"code":..,"message":..}}.
// Unknown paths get the envelope with code "not_found"; disallowed methods
// get code "method_not_allowed" plus an Allow header. Request bodies on
// mutating routes are capped at maxRequestBody (413 "request_too_large"
// beyond it) and decoded strictly: unknown fields and trailing data after
// the first JSON value are 400 "bad_request". Queries shed by the planner's
// in-flight limit get 429 "overloaded" with a Retry-After hint; queries (or
// admissions) cut off by a deadline get 503 "deadline_exceeded".
//
// The pre-versioning paths (/healthz, /status, /tree, /history, /metrics)
// remain as deprecated aliases: same behaviour, plus a "Deprecation: true"
// header and a Link header naming the successor under /v1/. They will be
// removed in a future major version; new clients should use /v1/.
//
// The GET surface is read-only; /v1/instances mutates the placement through
// the runtime's serialized admission path. Ingestion and ticking stay with
// the owner.
//
// The status timestamp comes from the injected clock; HTTPHandler is the
// serving wrapper that pins it to the wall clock, which keeps the
// deterministic pipeline free of ambient time reads while tests pass a
// fixed clock through HTTPHandlerWithClock.
func HTTPHandler(rt *Runtime) http.Handler {
	return HTTPHandlerWithClock(rt, time.Now) //lint:allow nondeterminism serving boundary: wall clock is the point
}

// HTTPHandlerWithClock is HTTPHandler with an explicit time source. Metrics
// (request/error counters and the /metrics exposition) come from the
// process-global obs registry.
func HTTPHandlerWithClock(rt *Runtime, now func() time.Time) http.Handler {
	return HTTPHandlerWithObs(rt, now, obs.Default())
}

// HTTPHandlerWithObs is HTTPHandlerWithClock with an explicit metrics
// registry: /metrics serves reg, and the API's own request/error counters
// register there. Tests use a fresh registry per handler to keep the
// exposition independent of other activity in the process. The planning
// service behind /v1/plan runs with default limits; use
// HTTPHandlerWithPlanner to tune them.
func HTTPHandlerWithObs(rt *Runtime, now func() time.Time, reg *obs.Registry) http.Handler {
	// The zero config is always valid and rt.PlanSnapshot is non-nil, so
	// construction cannot fail here.
	planner, err := plan.NewService(rt.PlanSnapshot, plan.Config{})
	if err != nil {
		panic(err)
	}
	return HTTPHandlerWithPlanner(rt, planner, now, reg)
}

// HTTPHandlerWithPlanner is HTTPHandlerWithObs with an explicit planning
// service (the daemon builds one from its -plan-max-inflight and
// -plan-deadline flags; tests pin tiny limits to exercise shedding).
func HTTPHandlerWithPlanner(rt *Runtime, planner *plan.Service, now func() time.Time, reg *obs.Registry) http.Handler {
	api := &httpAPI{
		rt:      rt,
		planner: planner,
		requests: reg.Counter("smoothop_http_requests_total",
			"HTTP API requests received."),
		errors: reg.Counter("smoothop_http_errors_total",
			"HTTP API requests rejected or failed while encoding the response."),
	}

	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	}
	health := func(w http.ResponseWriter, r *http.Request) {
		quarantined := rt.Quarantined()
		emergency := rt.EmergencyNodes()
		trips := rt.ActiveTrips()
		view := struct {
			Status      string     `json:"status"`
			Placed      bool       `json:"placed"`
			Quarantined []string   `json:"quarantined"`
			ActiveTrips []tripView `json:"active_trips"`
			Emergency   []string   `json:"emergency_nodes"`
			Time        time.Time  `json:"time"`
		}{
			Status:      "ok",
			Placed:      rt.Placed(),
			Quarantined: quarantined,
			ActiveTrips: make([]tripView, 0, len(trips)),
			Emergency:   emergency,
			Time:        now().UTC(),
		}
		if len(quarantined) > 0 || len(emergency) > 0 || len(trips) > 0 {
			view.Status = "degraded"
		}
		for _, tp := range trips {
			view.ActiveTrips = append(view.ActiveTrips, tripView{
				Node:           tp.Node,
				Start:          tp.Start.UTC(),
				Until:          tp.Start.Add(tp.Duration).UTC(),
				BudgetFraction: tp.Budget(),
			})
		}
		api.writeJSON(w, view)
	}
	status := func(w http.ResponseWriter, r *http.Request) {
		tree := rt.Tree()
		history := rt.History()
		view := struct {
			Placed      bool      `json:"placed"`
			Instances   int       `json:"instances"`
			Leaves      int       `json:"leaves"`
			Ticks       int       `json:"ticks"`
			Quarantined int       `json:"quarantined"`
			LastTick    *tickView `json:"last_tick,omitempty"`
			Time        time.Time `json:"time"`
		}{
			Placed:      rt.Placed(),
			Instances:   tree.InstanceCount(),
			Leaves:      len(tree.Leaves()),
			Ticks:       len(history),
			Quarantined: len(rt.Quarantined()),
			Time:        now().UTC(),
		}
		if n := len(history); n > 0 {
			view.LastTick = newTickView(history[n-1])
		}
		api.writeJSON(w, view)
	}
	treeH := func(w http.ResponseWriter, r *http.Request) {
		// Render into a buffer first: writing the response body before a
		// failure would lock in a 200 status with truncated JSON.
		var buf bytes.Buffer
		if err := rt.Tree().Save(&buf); err != nil {
			api.writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
	}
	history := func(w http.ResponseWriter, r *http.Request) {
		reports := rt.History()
		views := make([]*tickView, len(reports))
		for i, rep := range reports {
			views[i] = newTickView(rep)
		}
		api.writeJSON(w, views)
	}
	metrics := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		_ = reg.WriteProm(w)
	}
	fragmentation := func(w http.ResponseWriter, r *http.Request) {
		rows, err := rt.MultiFragmentationRates()
		if err != nil {
			api.writeAdmissionError(w, err)
			return
		}
		views := make([]fragRowView, len(rows))
		for i, row := range rows {
			views[i] = fragRowView{
				Level:      row.Level.String(),
				Dimension:  row.Dimension,
				Capacity:   row.Capacity,
				Headroom:   row.Headroom,
				Admissible: row.Admissible,
				Stranded:   row.StrandedWatts,
				RatePct:    row.RatePct,
			}
		}
		api.writeJSON(w, views)
	}

	admit := func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			ID         string                   `json:"id"`
			Service    string                   `json:"service"`
			AsOf       string                   `json:"as_of"`
			TrainWeeks int                      `json:"train_weeks"`
			Demands    powertree.ResourceVector `json:"demands"`
		}
		if !api.decodeBody(w, r, &body) {
			return
		}
		if body.ID == "" || body.Service == "" {
			api.writeError(w, http.StatusBadRequest, "bad_request", `body needs "id" and "service"`)
			return
		}
		// No "as_of" means "the runtime's own clock" (its latest
		// Bootstrap/Tick time) — NOT the wall clock, which on a replay
		// daemon sits far outside the stored telemetry window.
		var asOf time.Time
		if body.AsOf != "" {
			parsed, err := time.Parse(time.RFC3339, body.AsOf)
			if err != nil {
				api.writeError(w, http.StatusBadRequest, "bad_request", `"as_of" must be RFC 3339: `+err.Error())
				return
			}
			asOf = parsed
		}
		if body.TrainWeeks < 0 {
			api.writeError(w, http.StatusBadRequest, "bad_request", `"train_weeks" must not be negative`)
			return
		}
		leaf, err := rt.Admit(AdmitRequest{
			ID:         body.ID,
			Service:    body.Service,
			AsOf:       asOf,
			TrainWeeks: body.TrainWeeks,
			Demands:    body.Demands,
		})
		if err != nil {
			api.writeAdmissionError(w, err)
			return
		}
		api.writeJSONStatus(w, http.StatusCreated, instanceView{ID: body.ID, Leaf: leaf})
	}
	planH := func(w http.ResponseWriter, r *http.Request) {
		var q plan.Query
		if !api.decodeBody(w, r, &q) {
			return
		}
		res, err := planner.Evaluate(r.Context(), q)
		if err != nil {
			api.writePlanError(w, err)
			return
		}
		api.writeJSON(w, res)
	}

	retire := func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/instances/")
		if id == "" || strings.Contains(id, "/") {
			api.writeError(w, http.StatusNotFound, "not_found", "unknown path "+r.URL.Path)
			return
		}
		leaf, err := rt.RetireInstance(id)
		if err != nil {
			api.writeAdmissionError(w, err)
			return
		}
		api.writeJSON(w, instanceView{ID: id, Leaf: leaf})
	}

	mux := http.NewServeMux()
	// The versioned API.
	mux.HandleFunc("/v1/health", api.get(health))
	mux.HandleFunc("/v1/status", api.get(status))
	mux.HandleFunc("/v1/tree", api.get(treeH))
	mux.HandleFunc("/v1/history", api.get(history))
	mux.HandleFunc("/v1/metrics", api.get(metrics))
	mux.HandleFunc("/v1/fragmentation", api.get(fragmentation))
	mux.HandleFunc("/v1/instances", api.method(http.MethodPost, admit))
	mux.HandleFunc("/v1/instances/", api.method(http.MethodDelete, retire))
	mux.HandleFunc("/v1/plan", api.method(http.MethodPost, planH))
	// Deprecated pre-versioning aliases: identical behaviour plus
	// deprecation headers pointing at the successor route.
	mux.HandleFunc("/healthz", api.get(deprecated("/v1/health", healthz)))
	mux.HandleFunc("/status", api.get(deprecated("/v1/status", status)))
	mux.HandleFunc("/tree", api.get(deprecated("/v1/tree", treeH)))
	mux.HandleFunc("/history", api.get(deprecated("/v1/history", history)))
	mux.HandleFunc("/metrics", api.get(deprecated("/v1/metrics", metrics)))
	// Everything else: the error envelope, not the mux's plain-text 404.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		api.requests.Inc()
		api.writeError(w, http.StatusNotFound, "not_found", "unknown path "+r.URL.Path)
	})
	return mux
}

// deprecated marks a legacy route with the standard deprecation headers and
// its /v1/ successor before delegating.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// httpAPI bundles the runtime with the API's own instrumentation.
type httpAPI struct {
	rt       *Runtime
	planner  *plan.Service
	requests *obs.Counter
	errors   *obs.Counter
}

// maxRequestBody caps every mutating request's body. 1 MiB is orders of
// magnitude above any legitimate admission or plan query, and small enough
// that a hostile client cannot make a handler buffer arbitrary data.
const maxRequestBody = 1 << 20

// get wraps a handler with request counting and the GET-only method check.
func (a *httpAPI) get(h http.HandlerFunc) http.HandlerFunc {
	return a.method(http.MethodGet, h)
}

// method wraps a handler with request counting, a single-method check —
// anything else gets the 405 envelope plus an Allow header — and, for
// mutating methods, the request-body cap: every byte past maxRequestBody
// surfaces as *http.MaxBytesError wherever the handler reads the body.
func (a *httpAPI) method(allow string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a.requests.Inc()
		if r.Method != allow {
			w.Header().Set("Allow", allow)
			a.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				r.Method+" is not allowed; use "+allow)
			return
		}
		if allow != http.MethodGet && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		}
		h(w, r)
	}
}

// decodeBody strictly decodes a request body into dst: unknown fields are
// rejected, as is any trailing data after the first JSON value (so
// `{"id":"x"} garbage` no longer passes), and a body past the cap becomes
// the 413 envelope. Returns false after writing the error response.
func (a *httpAPI) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		a.writeDecodeError(w, err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		if err != nil && !isSyntaxish(err) {
			// A read failure (body cap, broken connection) rather than
			// genuine trailing content.
			a.writeDecodeError(w, err)
			return false
		}
		a.writeError(w, http.StatusBadRequest, "bad_request",
			"request body must be a single JSON value with no trailing data")
		return false
	}
	return true
}

// isSyntaxish reports whether a decode failure describes malformed JSON
// content (as opposed to an I/O failure while reading the body).
func isSyntaxish(err error) bool {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	return errors.As(err, &syn) || errors.As(err, &typ)
}

// writeDecodeError maps a body-decode failure onto the envelope: the body
// cap is 413 "request_too_large", everything else 400 "bad_request".
func (a *httpAPI) writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		a.writeError(w, http.StatusRequestEntityTooLarge, "request_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	a.writeError(w, http.StatusBadRequest, "bad_request", "decoding body: "+err.Error())
}

// writeAdmissionError maps AdmitInstance/RetireInstance failures onto the
// error envelope.
func (a *httpAPI) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotPlaced):
		a.writeError(w, http.StatusConflict, "not_placed", err.Error())
	case errors.Is(err, placement.ErrAlreadyAdmitted):
		a.writeError(w, http.StatusConflict, "already_admitted", err.Error())
	case errors.Is(err, placement.ErrNoCapacity):
		a.writeError(w, http.StatusConflict, "no_capacity", err.Error())
	case errors.Is(err, placement.ErrUnknownInstance):
		a.writeError(w, http.StatusNotFound, "unknown_instance", err.Error())
	case errors.Is(err, powertree.ErrBadDimension), errors.Is(err, powertree.ErrReservedPower):
		// A malformed demand vector is the caller's input, not server state.
		a.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// A deadline or disconnect is the caller's (or the limiter's) doing,
		// not a server bug — 503, not the 500 this used to fall through to.
		a.writeError(w, http.StatusServiceUnavailable, "deadline_exceeded", err.Error())
	default:
		a.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// writePlanError maps plan.Service failures onto the error envelope. Shed
// queries carry a Retry-After hint sized to the planner's deadline: by then
// at least one in-flight slot must have freed.
func (a *httpAPI) writePlanError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, plan.ErrOverloaded):
		secs := int(a.planner.RetryAfter() / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		a.writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
	case errors.Is(err, plan.ErrBadQuery):
		a.writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, plan.ErrUnknownService):
		a.writeError(w, http.StatusNotFound, "unknown_service", err.Error())
	case errors.Is(err, plan.ErrUnknownNode):
		a.writeError(w, http.StatusNotFound, "unknown_node", err.Error())
	case errors.Is(err, ErrNotPlaced):
		a.writeError(w, http.StatusConflict, "not_placed", err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		a.writeError(w, http.StatusServiceUnavailable, "deadline_exceeded", err.Error())
	default:
		a.writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// fragRowView is the wire form of one stranded-headroom row: one (level,
// dimension) pair, units following the dimension (watts for "power", the
// declared unit otherwise).
type fragRowView struct {
	Level      string  `json:"level"`
	Dimension  string  `json:"dimension"`
	Capacity   float64 `json:"capacity"`
	Headroom   float64 `json:"headroom"`
	Admissible float64 `json:"admissible"`
	Stranded   float64 `json:"stranded"`
	RatePct    float64 `json:"rate_pct"`
}

// instanceView is the wire form of an admission or retirement outcome.
type instanceView struct {
	ID   string `json:"id"`
	Leaf string `json:"leaf"`
}

// errorEnvelope is the uniform wire form of every API error.
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeError emits the JSON error envelope and counts the failure.
func (a *httpAPI) writeError(w http.ResponseWriter, status int, code, message string) {
	a.errors.Inc()
	var env errorEnvelope
	env.Error.Code = code
	env.Error.Message = message
	body, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		http.Error(w, message, status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(body, '\n'))
}

// writeJSON encodes v into a buffer before touching the response, so an
// encode failure can still produce a clean 500 instead of a 200 with a
// truncated body, and counts encode failures on the error counter.
func (a *httpAPI) writeJSON(w http.ResponseWriter, v interface{}) {
	a.writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with an explicit success status code.
func (a *httpAPI) writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		a.writeError(w, http.StatusInternalServerError, "internal", "encoding response failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// tripView is the wire form of an injected breaker-trip window.
type tripView struct {
	Node           string    `json:"node"`
	Start          time.Time `json:"start"`
	Until          time.Time `json:"until"`
	BudgetFraction float64   `json:"budget_fraction"`
}

// tickView is the wire form of a DriftReport.
type tickView struct {
	WorstNode          string   `json:"worst_node"`
	WorstScore         float64  `json:"worst_score"`
	SumOfPeaks         float64  `json:"sum_of_peaks"`
	Swaps              int      `json:"swaps"`
	SwappedIDs         []string `json:"swapped_ids,omitempty"`
	Quarantined        []string `json:"quarantined,omitempty"`
	BreakerTrips       int      `json:"breaker_trips,omitempty"`
	EmergencyThrottles int      `json:"emergency_throttles,omitempty"`
}

func newTickView(rep *DriftReport) *tickView {
	v := &tickView{
		WorstNode:          rep.WorstNode,
		WorstScore:         rep.WorstScore,
		SumOfPeaks:         rep.SumOfPeaks,
		Swaps:              len(rep.Swaps),
		Quarantined:        rep.Quarantined,
		BreakerTrips:       len(rep.BreakerTrips),
		EmergencyThrottles: len(rep.EmergencyThrottles),
	}
	for _, sw := range rep.Swaps {
		v.SwappedIDs = append(v.SwappedIDs, sw.InstanceA, sw.InstanceB)
	}
	sort.Strings(v.SwappedIDs)
	return v
}

package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// HTTPHandler exposes a runtime's state over HTTP for dashboards and
// debugging:
//
//	GET /status   — placement summary: instance count, leaves, tick count
//	GET /tree     — the placed power tree as JSON (powertree.Save format)
//	GET /history  — drift reports from every tick
//	GET /metrics  — the obs registry in Prometheus text format
//	GET /healthz  — liveness
//
// The handler is read-only; ingestion and ticking stay with the owner. Every
// route answers GET only; other methods get 405 with an Allow header.
//
// The status timestamp comes from the injected clock; HTTPHandler is the
// serving wrapper that pins it to the wall clock, which keeps the
// deterministic pipeline free of ambient time reads while tests pass a
// fixed clock through HTTPHandlerWithClock.
func HTTPHandler(rt *Runtime) http.Handler {
	return HTTPHandlerWithClock(rt, time.Now) //lint:allow nondeterminism serving boundary: wall clock is the point
}

// HTTPHandlerWithClock is HTTPHandler with an explicit time source. Metrics
// (request/error counters and the /metrics exposition) come from the
// process-global obs registry.
func HTTPHandlerWithClock(rt *Runtime, now func() time.Time) http.Handler {
	return HTTPHandlerWithObs(rt, now, obs.Default())
}

// HTTPHandlerWithObs is HTTPHandlerWithClock with an explicit metrics
// registry: /metrics serves reg, and the API's own request/error counters
// register there. Tests use a fresh registry per handler to keep the
// exposition independent of other activity in the process.
func HTTPHandlerWithObs(rt *Runtime, now func() time.Time, reg *obs.Registry) http.Handler {
	api := &httpAPI{
		rt: rt,
		requests: reg.Counter("smoothop_http_requests_total",
			"HTTP API requests received."),
		errors: reg.Counter("smoothop_http_errors_total",
			"HTTP API requests rejected or failed while encoding the response."),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", api.get(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	}))
	mux.HandleFunc("/status", api.get(func(w http.ResponseWriter, r *http.Request) {
		tree := rt.Tree()
		status := struct {
			Placed    bool      `json:"placed"`
			Instances int       `json:"instances"`
			Leaves    int       `json:"leaves"`
			Ticks     int       `json:"ticks"`
			LastTick  *tickView `json:"last_tick,omitempty"`
			Time      time.Time `json:"time"`
		}{
			Placed:    rt.placed,
			Instances: tree.InstanceCount(),
			Leaves:    len(tree.Leaves()),
			Ticks:     len(rt.history),
			Time:      now().UTC(),
		}
		if n := len(rt.history); n > 0 {
			status.LastTick = newTickView(rt.history[n-1])
		}
		api.writeJSON(w, status)
	}))
	mux.HandleFunc("/tree", api.get(func(w http.ResponseWriter, r *http.Request) {
		// Render into a buffer first: writing the response body before a
		// failure would lock in a 200 status with truncated JSON.
		var buf bytes.Buffer
		if err := rt.Tree().Save(&buf); err != nil {
			api.errors.Inc()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
	}))
	mux.HandleFunc("/history", api.get(func(w http.ResponseWriter, r *http.Request) {
		views := make([]*tickView, len(rt.history))
		for i, rep := range rt.history {
			views[i] = newTickView(rep)
		}
		api.writeJSON(w, views)
	}))
	mux.HandleFunc("/metrics", api.get(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		_ = reg.WriteProm(w)
	}))
	return mux
}

// httpAPI bundles the runtime with the API's own instrumentation.
type httpAPI struct {
	rt       *Runtime
	requests *obs.Counter
	errors   *obs.Counter
}

// get wraps a handler with request counting and the GET-only method check.
func (a *httpAPI) get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a.requests.Inc()
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			a.errors.Inc()
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// writeJSON encodes v into a buffer before touching the response, so an
// encode failure can still produce a clean 500 instead of a 200 with a
// truncated body, and counts encode failures on the error counter.
func (a *httpAPI) writeJSON(w http.ResponseWriter, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		a.errors.Inc()
		http.Error(w, "encoding response failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// tickView is the wire form of a DriftReport.
type tickView struct {
	WorstNode  string   `json:"worst_node"`
	WorstScore float64  `json:"worst_score"`
	SumOfPeaks float64  `json:"sum_of_peaks"`
	Swaps      int      `json:"swaps"`
	SwappedIDs []string `json:"swapped_ids,omitempty"`
}

func newTickView(rep *DriftReport) *tickView {
	v := &tickView{
		WorstNode:  rep.WorstNode,
		WorstScore: rep.WorstScore,
		SumOfPeaks: rep.SumOfPeaks,
		Swaps:      len(rep.Swaps),
	}
	for _, sw := range rep.Swaps {
		v.SwappedIDs = append(v.SwappedIDs, sw.InstanceA, sw.InstanceB)
	}
	sort.Strings(v.SwappedIDs)
	return v
}

package core

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// HTTPHandler exposes a runtime's state over HTTP for dashboards and
// debugging:
//
//	GET /status   — placement summary: instance count, leaves, tick count
//	GET /tree     — the placed power tree as JSON (powertree.Save format)
//	GET /history  — drift reports from every tick
//	GET /healthz  — liveness
//
// The handler is read-only; ingestion and ticking stay with the owner.
//
// The status timestamp comes from the injected clock; HTTPHandler is the
// serving wrapper that pins it to the wall clock, which keeps the
// deterministic pipeline free of ambient time reads while tests pass a
// fixed clock through HTTPHandlerWithClock.
func HTTPHandler(rt *Runtime) http.Handler {
	return HTTPHandlerWithClock(rt, time.Now) //lint:allow nondeterminism serving boundary: wall clock is the point
}

// HTTPHandlerWithClock is HTTPHandler with an explicit time source.
func HTTPHandlerWithClock(rt *Runtime, now func() time.Time) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		tree := rt.Tree()
		status := struct {
			Placed    bool      `json:"placed"`
			Instances int       `json:"instances"`
			Leaves    int       `json:"leaves"`
			Ticks     int       `json:"ticks"`
			LastTick  *tickView `json:"last_tick,omitempty"`
			Time      time.Time `json:"time"`
		}{
			Placed:    rt.placed,
			Instances: tree.InstanceCount(),
			Leaves:    len(tree.Leaves()),
			Ticks:     len(rt.history),
			Time:      now().UTC(),
		}
		if n := len(rt.history); n > 0 {
			status.LastTick = newTickView(rt.history[n-1])
		}
		writeJSON(w, status)
	})
	mux.HandleFunc("/tree", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rt.Tree().Save(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		views := make([]*tickView, len(rt.history))
		for i, rep := range rt.history {
			views[i] = newTickView(rep)
		}
		writeJSON(w, views)
	})
	return mux
}

// tickView is the wire form of a DriftReport.
type tickView struct {
	WorstNode  string   `json:"worst_node"`
	WorstScore float64  `json:"worst_score"`
	SumOfPeaks float64  `json:"sum_of_peaks"`
	Swaps      int      `json:"swaps"`
	SwappedIDs []string `json:"swapped_ids,omitempty"`
}

func newTickView(rep *DriftReport) *tickView {
	v := &tickView{
		WorstNode:  rep.WorstNode,
		WorstScore: rep.WorstScore,
		SumOfPeaks: rep.SumOfPeaks,
		Swaps:      len(rep.Swaps),
	}
	for _, sw := range rep.Swaps {
		v.SwappedIDs = append(v.SwappedIDs, sw.InstanceA, sw.InstanceB)
	}
	sort.Strings(v.SwappedIDs)
	return v
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

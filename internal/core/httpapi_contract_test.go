package core

import (
	"net/http"
	"strings"
	"testing"
)

// TestHTTPV1Contract sweeps every /v1 route against the API-wide contract:
// a disallowed method is 405 with an Allow header and the uniform error
// envelope, and every mutating route enforces the body cap (413) and strict
// decoding (unknown fields and trailing data are 400). Route-specific
// behaviour lives in the per-route tests; this table is the one place that
// guarantees no route drifts from the shared conventions.
func TestHTTPV1Contract(t *testing.T) {
	srv, _, _, _ := instancesFixture(t)
	client := srv.Client()

	routes := []struct {
		path     string
		allow    string // the Allow header a 405 must carry
		mutating bool   // consumes a JSON body (cap + strict decode apply)
	}{
		{"/v1/health", http.MethodGet, false},
		{"/v1/status", http.MethodGet, false},
		{"/v1/tree", http.MethodGet, false},
		{"/v1/history", http.MethodGet, false},
		{"/v1/metrics", http.MethodGet, false},
		{"/v1/fragmentation", http.MethodGet, false},
		{"/v1/instances", http.MethodPost, true},
		{"/v1/instances/some-id", http.MethodDelete, false},
		{"/v1/plan", http.MethodPost, true},
	}

	// wrongMethod returns a method the route does not allow.
	wrongMethod := func(allow string) string {
		if allow == http.MethodGet {
			return http.MethodPost
		}
		return http.MethodGet
	}

	for _, rt := range routes {
		t.Run(rt.path, func(t *testing.T) {
			method := wrongMethod(rt.allow)
			req, err := http.NewRequest(method, srv.URL+rt.path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("%s %s = %d, want 405", method, rt.path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != rt.allow {
				t.Fatalf("%s: Allow = %q, want %q", rt.path, got, rt.allow)
			}
			if code, _ := decodeEnvelope(t, resp); code != "method_not_allowed" {
				t.Fatalf("%s: code = %q, want method_not_allowed", rt.path, code)
			}

			if !rt.mutating {
				return
			}

			// Body cap: a syntactically valid body that runs past
			// maxRequestBody is 413 (a malformed one would fail the JSON
			// decode first and report 400).
			huge := `{"id":"` + strings.Repeat("x", maxRequestBody) + `"}`
			resp = postJSON(t, client, srv.URL+rt.path, huge)
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("%s oversized body = %d, want 413", rt.path, resp.StatusCode)
			}
			if code, _ := decodeEnvelope(t, resp); code != "request_too_large" {
				t.Fatalf("%s oversized body code = %q, want request_too_large", rt.path, code)
			}

			// Strict decoding: unknown fields are rejected...
			resp = postJSON(t, client, srv.URL+rt.path, `{"no_such_field":1}`)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s unknown field = %d, want 400", rt.path, resp.StatusCode)
			}
			if code, msg := decodeEnvelope(t, resp); code != "bad_request" {
				t.Fatalf("%s unknown field = %q (%q), want bad_request", rt.path, code, msg)
			}

			// ...and so is trailing data after the first JSON value.
			resp = postJSON(t, client, srv.URL+rt.path, `{} trailing`)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s trailing data = %d, want 400", rt.path, resp.StatusCode)
			}
			if code, msg := decodeEnvelope(t, resp); code != "bad_request" {
				t.Fatalf("%s trailing data = %q (%q), want bad_request", rt.path, code, msg)
			}
		})
	}
}

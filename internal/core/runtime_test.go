package core

import (
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// runtimeFixture wires a fleet's generated traces through a store into a
// Runtime, exactly like a deployment would stream sensor data.
func runtimeFixture(t *testing.T) (*Runtime, []placement.Instance, *workload.Fleet, time.Time) {
	t.Helper()
	cfg, err := workload.StandardDCConfig(workload.DC2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gen.Step = time.Hour
	fleet, tree, err := workload.BuildDC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(tracestore.Config{Step: time.Hour, Retention: 4 * 7 * 24 * time.Hour})
	rt, err := NewRuntime(New(Config{TopServices: 8, Seed: 1}), store, tree, RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	instances := make([]placement.Instance, len(fleet.Instances))
	for i, inst := range fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
		for j, v := range inst.Trace.Values {
			if err := rt.Ingest(inst.ID, inst.Trace.TimeAt(j), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	endOfTraining := fleet.Instances[0].Trace.Start.Add(2 * 7 * 24 * time.Hour)
	return rt, instances, fleet, endOfTraining
}

func TestRuntimeBootstrapAndTick(t *testing.T) {
	rt, instances, fleet, trainEnd := runtimeFixture(t)

	if _, err := rt.Tick(trainEnd, 0); err != ErrNotPlaced {
		t.Fatalf("tick before bootstrap: %v", err)
	}
	if err := rt.Bootstrap(instances, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	if err := placement.Verify(rt.Tree(), instances); err != nil {
		t.Fatal(err)
	}
	if err := rt.Bootstrap(instances, trainEnd, 2); err != ErrAlreadyPlaced {
		t.Fatalf("double bootstrap: %v", err)
	}

	// Tick over the held-out week.
	testEnd := trainEnd.Add(7 * 24 * time.Hour)
	rep, err := rt.Tick(testEnd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstNode == "" || rep.SumOfPeaks <= 0 {
		t.Fatalf("drift report: %+v", rep)
	}
	if len(rt.History()) != 1 {
		t.Fatalf("history = %d", len(rt.History()))
	}
	// The placement must stay complete whatever the monitor did.
	if err := placement.Verify(rt.Tree(), instances); err != nil {
		t.Fatal(err)
	}
	_ = fleet
}

func TestRuntimeConstructionErrors(t *testing.T) {
	fw := New(Config{})
	store := tracestore.New(tracestore.Config{})
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "r", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(nil, store, tree, RuntimeConfig{}); err == nil {
		t.Fatal("nil framework must error")
	}
	if _, err := NewRuntime(fw, nil, tree, RuntimeConfig{}); err == nil {
		t.Fatal("nil store must error")
	}
	if _, err := NewRuntime(fw, store, nil, RuntimeConfig{}); err == nil {
		t.Fatal("nil tree must error")
	}
	if err := tree.Leaves()[0].Attach("squatter"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRuntime(fw, store, tree, RuntimeConfig{}); err == nil {
		t.Fatal("occupied tree must error")
	}
}

func TestRuntimeBootstrapMissingHistory(t *testing.T) {
	fw := New(Config{})
	store := tracestore.New(tracestore.Config{Step: time.Hour})
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "r2", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(fw, store, tree, RuntimeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	asOf := time.Date(2016, 8, 8, 0, 0, 0, 0, time.UTC)
	err = rt.Bootstrap([]placement.Instance{{ID: "ghost", Service: "x"}}, asOf, 2)
	if err == nil {
		t.Fatal("bootstrap without telemetry must error")
	}
}

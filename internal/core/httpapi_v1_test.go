package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPV1RoutesAndLegacyAliases checks the versioned API contract: every
// /v1/ route serves without deprecation headers, every legacy alias serves
// the same status with Deprecation plus a successor Link, and errors come
// back in the uniform JSON envelope.
func TestHTTPV1RoutesAndLegacyAliases(t *testing.T) {
	srv, _ := metricsFixture(t)
	client := srv.Client()

	pairs := []struct{ v1, legacy string }{
		{"/v1/health", "/healthz"},
		{"/v1/status", "/status"},
		{"/v1/tree", "/tree"},
		{"/v1/history", "/history"},
		{"/v1/metrics", "/metrics"},
	}
	for _, p := range pairs {
		v1Resp, err := client.Get(srv.URL + p.v1)
		if err != nil {
			t.Fatal(err)
		}
		v1Resp.Body.Close()
		if v1Resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", p.v1, v1Resp.StatusCode)
		}
		if got := v1Resp.Header.Get("Deprecation"); got != "" {
			t.Errorf("GET %s carries Deprecation %q; versioned routes must not", p.v1, got)
		}

		legResp, err := client.Get(srv.URL + p.legacy)
		if err != nil {
			t.Fatal(err)
		}
		legResp.Body.Close()
		if legResp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", p.legacy, legResp.StatusCode)
		}
		if got := legResp.Header.Get("Deprecation"); got != "true" {
			t.Errorf("GET %s Deprecation = %q, want true", p.legacy, got)
		}
		wantLink := "<" + p.v1 + `>; rel="successor-version"`
		if got := legResp.Header.Get("Link"); got != wantLink {
			t.Errorf("GET %s Link = %q, want %q", p.legacy, got, wantLink)
		}
	}
}

func decodeEnvelope(t *testing.T, resp *http.Response) (code, message string) {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json (body %q)", ct, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the envelope: %v (body %q)", err, body)
	}
	return env.Error.Code, env.Error.Message
}

func TestHTTPErrorEnvelope(t *testing.T) {
	srv, reg := metricsFixture(t)
	client := srv.Client()

	// Unknown path → 404 envelope.
	resp, err := client.Get(srv.URL + "/v2/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
	if code, msg := decodeEnvelope(t, resp); code != "not_found" || !strings.Contains(msg, "/v2/doesnotexist") {
		t.Fatalf("404 envelope = %q %q", code, msg)
	}

	// Wrong method → 405 envelope with Allow, on both route families.
	for _, path := range []string{"/v1/status", "/status"} {
		resp, err := client.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodGet {
			t.Fatalf("POST %s Allow = %q, want GET", path, got)
		}
		if code, _ := decodeEnvelope(t, resp); code != "method_not_allowed" {
			t.Fatalf("POST %s envelope code = %q", path, code)
		}
	}

	if got := reg.Counter("smoothop_http_errors_total", "").Value(); got != 3 {
		t.Errorf("error counter = %d, want 3", got)
	}
}

// TestHTTPV1HealthDegradation drives the runtime into a degraded state and
// checks /v1/health reports it.
func TestHTTPV1HealthDegradation(t *testing.T) {
	rt, instances, trainEnd := degradeFixture(t, RuntimeConfig{}, 500, 3, map[string]bool{"d": true})
	clock := func() time.Time { return time.Date(2016, 8, 22, 0, 0, 0, 0, time.UTC) }
	srv := httptest.NewServer(HTTPHandlerWithClock(rt, clock))
	defer srv.Close()

	getHealth := func() (status string, quarantined []string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/v1/health")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Status      string   `json:"status"`
			Quarantined []string `json:"quarantined"`
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatalf("%v (body %q)", err, body)
		}
		return view.Status, view.Quarantined
	}

	if status, _ := getHealth(); status != "ok" {
		t.Fatalf("pre-bootstrap health = %q, want ok", status)
	}
	if err := rt.Bootstrap(instances, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Tick(trainEnd.Add(dWeek), 0); err != nil {
		t.Fatal(err)
	}
	status, quarantined := getHealth()
	if status != "degraded" {
		t.Fatalf("health after dark week = %q, want degraded", status)
	}
	if len(quarantined) != 1 || quarantined[0] != "d" {
		t.Fatalf("health quarantined = %v, want [d]", quarantined)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testDC builds a fast, small synthetic datacenter (coarse step).
func testDC(t *testing.T, name workload.DCName) (*workload.Fleet, *powertree.Node, workload.DCConfig) {
	t.Helper()
	cfg, err := workload.StandardDCConfig(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gen.Step = time.Hour // keep tests fast
	fleet, tree, err := workload.BuildDC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, tree, cfg
}

func TestOptimizeEndToEnd(t *testing.T) {
	fleet, tree, dcCfg := testDC(t, workload.DC3)
	fw := New(Config{TopServices: 8, Seed: 1, Baseline: placement.Oblivious{MixFraction: dcCfg.BaselineMix}})
	pr, err := fw.Optimize(fleet, tree)
	if err != nil {
		t.Fatal(err)
	}
	// Both placements complete.
	instances := make([]placement.Instance, len(fleet.Instances))
	for i, inst := range fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
	}
	if err := placement.Verify(pr.BaselineTree, instances); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if err := placement.Verify(pr.OptimizedTree, instances); err != nil {
		t.Fatalf("optimized: %v", err)
	}
	// The input tree stays untouched.
	if tree.InstanceCount() != 0 {
		t.Fatal("Optimize must not mutate the input tree")
	}
	// The headline claim on the high-heterogeneity DC: positive leaf-level
	// peak reduction, measured out-of-sample.
	if pr.RPPReductionPct <= 0 {
		t.Fatalf("RPP reduction = %v, want positive", pr.RPPReductionPct)
	}
	// DC-level peak is placement-invariant.
	for _, r := range pr.PeakReports {
		if r.Level == powertree.DC && (r.ReductionPct > 1e-6 || r.ReductionPct < -1e-6) {
			t.Fatalf("DC-level reduction must be 0: %+v", r)
		}
	}
	// Mean leaf asynchrony score improves.
	mean := func(m map[string]float64) float64 {
		var s float64
		for _, v := range m {
			s += v
		}
		return s / float64(len(m))
	}
	if mean(pr.OptimizedLeafScores) <= mean(pr.BaselineLeafScores) {
		t.Fatalf("mean leaf asynchrony did not improve: %v vs %v",
			mean(pr.OptimizedLeafScores), mean(pr.BaselineLeafScores))
	}
}

func TestOptimizeHeterogeneityOrdering(t *testing.T) {
	// Fig. 10's cross-DC shape: DC3 (high heterogeneity, LC-heavy, badly
	// packed baseline) gains more at the leaves than DC1.
	fleet1, tree1, cfg1 := testDC(t, workload.DC1)
	fw1 := New(Config{TopServices: 8, Seed: 1, Baseline: placement.Oblivious{MixFraction: cfg1.BaselineMix}})
	pr1, err := fw1.Optimize(fleet1, tree1)
	if err != nil {
		t.Fatal(err)
	}
	fleet3, tree3, cfg3 := testDC(t, workload.DC3)
	fw3 := New(Config{TopServices: 8, Seed: 1, Baseline: placement.Oblivious{MixFraction: cfg3.BaselineMix}})
	pr3, err := fw3.Optimize(fleet3, tree3)
	if err != nil {
		t.Fatal(err)
	}
	if pr3.RPPReductionPct <= pr1.RPPReductionPct {
		t.Fatalf("DC3 reduction %v should exceed DC1 %v", pr3.RPPReductionPct, pr1.RPPReductionPct)
	}
}

func TestOptimizeTooShort(t *testing.T) {
	cfg, err := workload.StandardDCConfig(workload.DC1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gen.Weeks = 2 // train=2 leaves no test week
	cfg.Gen.Step = time.Hour
	fleet, tree, err := workload.BuildDC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}).Optimize(fleet, tree); err == nil {
		t.Fatal("2-week fleet must fail the 2+1 split")
	}
}

func TestReshapeEndToEnd(t *testing.T) {
	fleet, tree, dcCfg := testDC(t, workload.DC3)
	fw := New(Config{TopServices: 8, Seed: 1, Baseline: placement.Oblivious{MixFraction: dcCfg.BaselineMix}})
	pr, err := fw.Optimize(fleet, tree)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := fw.Reshape(fleet, pr)
	if err != nil {
		t.Fatal(err)
	}
	if rr.NConv <= 0 {
		t.Fatalf("no conversion servers sized from %.2f%% headroom", pr.RPPReductionPct)
	}
	if rr.Lconv <= 0 || rr.Lconv > 0.9 {
		t.Fatalf("Lconv = %v", rr.Lconv)
	}
	// Fig. 13 shape: conversion adds LC and Batch throughput over baseline;
	// static-LC adds only LC.
	if rr.ConvImp.LCPct <= 0 {
		t.Fatalf("conversion LC improvement = %+v", rr.ConvImp)
	}
	if rr.ConvImp.BatchPct <= rr.StaticImp.BatchPct {
		t.Fatalf("conversion batch %+v must beat static %+v", rr.ConvImp, rr.StaticImp)
	}
	// Throttle/boost lifts LC further.
	if rr.TBImp.LCPct < rr.ConvImp.LCPct {
		t.Fatalf("TB LC %+v below conversion %+v", rr.TBImp, rr.ConvImp)
	}
	// No strategy may violate safety.
	for name, r := range map[string]*struct{ over, qos int }{
		"baseline":   {rr.Baseline.OverBudgetSteps, rr.Baseline.QoSViolations},
		"conversion": {rr.Conversion.OverBudgetSteps, rr.Conversion.QoSViolations},
		"tb":         {rr.ThrottleBoost.OverBudgetSteps, rr.ThrottleBoost.QoSViolations},
	} {
		if r.over != 0 {
			t.Fatalf("%s over budget on %d steps", name, r.over)
		}
		if r.qos != 0 {
			t.Fatalf("%s violated QoS on %d steps", name, r.qos)
		}
	}
	// Fig. 14 shape: slack shrinks.
	if rr.AvgSlackReductionPct <= 0 {
		t.Fatalf("avg slack reduction = %v", rr.AvgSlackReductionPct)
	}
}

func TestReshapeNilPlacement(t *testing.T) {
	fleet, _, _ := testDC(t, workload.DC1)
	if _, err := New(Config{}).Reshape(fleet, nil); err == nil {
		t.Fatal("nil placement must error")
	}
}

func TestAdaptRemapsDriftedPlacement(t *testing.T) {
	fleet, tree, _ := testDC(t, workload.DC2)
	fw := New(Config{TopServices: 8, Seed: 1})
	pr, err := fw.Optimize(fleet, tree)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the baseline (fragmented) tree to the monitor: it must detect low
	// scores and remap.
	rep, err := fw.Adapt(pr.BaselineTree, pr.TestTraces, 1.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstNode == "" || rep.WorstScore <= 0 {
		t.Fatalf("drift report: %+v", rep)
	}
	if len(rep.Swaps) == 0 {
		t.Fatal("fragmented tree should trigger swaps")
	}
	// A well-placed tree under the same floor should need few swaps.
	rep2, err := fw.Adapt(pr.OptimizedTree, pr.TestTraces, 1.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Swaps) >= len(rep.Swaps) {
		t.Logf("note: optimized tree swaps %d vs baseline %d", len(rep2.Swaps), len(rep.Swaps))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.topServices() != 10 || c.trainWeeks() != 2 || c.offPeak() != 0.85 || c.qosKnee() != 0.9 {
		t.Fatal("defaults broken")
	}
	if _, ok := c.baseline().(placement.Oblivious); !ok {
		t.Fatal("default baseline must be oblivious")
	}
	c2 := Config{TopServices: 5, TrainWeeks: 1, OffPeakFraction: 0.7, QoSKnee: 0.8, Baseline: placement.Random{}}
	if c2.topServices() != 5 || c2.trainWeeks() != 1 || c2.offPeak() != 0.7 || c2.qosKnee() != 0.8 {
		t.Fatal("overrides broken")
	}
	if _, ok := c2.baseline().(placement.Random); !ok {
		t.Fatal("baseline override broken")
	}
}

func TestReshapeWithLatencyModel(t *testing.T) {
	fleet, tree, dcCfg := testDC(t, workload.DC3)
	fw := New(Config{
		TopServices: 8, Seed: 1,
		Baseline: placement.Oblivious{MixFraction: dcCfg.BaselineMix},
		Latency:  sim.LatencyModel{ServiceTimeMs: 2, SLAms: 92}, // knee 0.9
	})
	pr, err := fw.Optimize(fleet, tree)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := fw.Reshape(fleet, pr)
	if err != nil {
		t.Fatal(err)
	}
	if rr.BaselineLatency == nil || rr.TBLatency == nil {
		t.Fatal("latency reports missing")
	}
	// The guarded threshold keeps both strategies within the SLA.
	if rr.BaselineLatency.SLAViolations != 0 || rr.TBLatency.SLAViolations != 0 {
		t.Fatalf("SLA violations: baseline %d, tb %d",
			rr.BaselineLatency.SLAViolations, rr.TBLatency.SLAViolations)
	}
	if rr.TBLatency.PeakP99Ms <= 0 || rr.TBLatency.MeanMs <= 2 {
		t.Fatalf("latency report: %+v", rr.TBLatency)
	}
}

func TestQoSKneeFromLatencySLA(t *testing.T) {
	c := Config{Latency: sim.LatencyModel{ServiceTimeMs: 2, SLAms: 92}}
	if got := c.qosKnee(); got < 0.89 || got > 0.91 {
		t.Fatalf("derived knee = %v, want ≈0.9", got)
	}
	// Explicit knee wins over derivation.
	c2 := Config{QoSKnee: 0.8, Latency: sim.LatencyModel{ServiceTimeMs: 2, SLAms: 92}}
	if c2.qosKnee() != 0.8 {
		t.Fatal("explicit knee must win")
	}
	// Impossible SLA falls back to the default knee.
	c3 := Config{Latency: sim.LatencyModel{ServiceTimeMs: 50, SLAms: 10}}
	if c3.qosKnee() != 0.9 {
		t.Fatalf("impossible SLA knee = %v", c3.qosKnee())
	}
}

func TestOptimizeOnForecast(t *testing.T) {
	fleet, tree, dcCfg := testDC(t, workload.DC3)
	fw := New(Config{
		TopServices: 8, Seed: 1,
		Baseline:        placement.Oblivious{MixFraction: dcCfg.BaselineMix},
		PlaceOnForecast: true,
	})
	pr, err := fw.Optimize(fleet, tree)
	if err != nil {
		t.Fatal(err)
	}
	if pr.RPPReductionPct <= 0 {
		t.Fatalf("forecast-driven placement did not defragment: %v", pr.RPPReductionPct)
	}
	instances := make([]placement.Instance, len(fleet.Instances))
	for i, inst := range fleet.Instances {
		instances[i] = placement.Instance{ID: inst.ID, Service: inst.Service}
	}
	if err := placement.Verify(pr.OptimizedTree, instances); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	fleet, tree, dcCfg := testDC(t, workload.DC2)
	run := func() float64 {
		fw := New(Config{TopServices: 8, Seed: 7, Baseline: placement.Oblivious{MixFraction: dcCfg.BaselineMix}})
		pr, err := fw.Optimize(fleet, tree)
		if err != nil {
			t.Fatal(err)
		}
		return pr.RPPReductionPct
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed must reproduce the pipeline: %v vs %v", a, b)
	}
}

func TestReshapeLconvOverride(t *testing.T) {
	fleet, tree, dcCfg := testDC(t, workload.DC3)
	fw := New(Config{
		TopServices: 8, Seed: 1,
		Baseline: placement.Oblivious{MixFraction: dcCfg.BaselineMix},
		Lconv:    0.7,
	})
	pr, err := fw.Optimize(fleet, tree)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := fw.Reshape(fleet, pr)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Lconv != 0.7 {
		t.Fatalf("Lconv override ignored: %v", rr.Lconv)
	}
	// The guarded threshold binds: per-server load stays at or below it.
	if peak := rr.ThrottleBoost.PerLCServerLoad.Peak(); peak > 0.7+1e-6 {
		t.Fatalf("per-server load %v above overridden Lconv", peak)
	}
}

package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/timeseries"
	"repro/internal/tracestore"
)

// Online admission: the runtime's arrival-stream path. Bootstrap places a
// whole fleet snapshot at once; deployments then churn one instance at a
// time. AdmitInstance scores an arriving instance from its stored telemetry
// (falling back to its service's reference trace below the quarantine
// floor, exactly like Bootstrap) and hands it to an asynchrony-aware
// placement.Online over the live tree. RetireInstance releases a departing
// instance. Both are safe for concurrent use — the HTTP layer calls them
// from request goroutines — and both refresh the per-level fragmentation
// gauges.

// AdmitRequest describes one arriving instance for Admit — the redesigned
// admission entry point (AdmitInstance remains as a positional shorthand).
//
// smoothop:immutable
type AdmitRequest struct {
	// ID and Service identify the instance; both are required.
	ID, Service string
	// AsOf is the telemetry time the scoring trace is read at; zero means
	// the latest Bootstrap/Tick time (the stored telemetry's clock, not the
	// wall clock).
	AsOf time.Time
	// TrainWeeks is the averaging window; < 1 means the framework default.
	TrainWeeks int
	// Demands optionally declares the instance's non-power resource demand
	// vector; it is validated, enforced against every capacity dimension the
	// tree declares, and remembered in the runtime's ledger until the
	// instance retires.
	Demands powertree.ResourceVector
}

// placementCfg assembles the placer options for admission views and
// tick-time remapping: the configured policy with the runtime's own demand
// ledger overlaid on the config's resolver (ledger wins). With no ledger
// entries and no configured resolver the config passes through untouched,
// keeping every multi-resource path inert.
//
// smoothop:locked mu
func (r *Runtime) placementCfg() placement.PolicyConfig {
	cfg := r.placeCfg
	if len(r.demands) == 0 && cfg.Demands == nil {
		return cfg
	}
	ledger := r.demands // allocated once at NewRuntime, mutated under mu
	fallback := cfg.Demands
	cfg.Demands = func(id string) (powertree.ResourceVector, bool) {
		if d, ok := ledger[id]; ok {
			return d, true
		}
		if fallback != nil {
			return fallback(id)
		}
		return nil, false
	}
	return cfg
}

// AdmitInstance places one arriving instance onto the live tree and returns
// the hosting leaf's name — shorthand for Admit with a positional request
// and no demand vector.
func (r *Runtime) AdmitInstance(id, service string, asOf time.Time, trainWeeks int) (string, error) {
	return r.Admit(AdmitRequest{ID: id, Service: service, AsOf: asOf, TrainWeeks: trainWeeks})
}

// Admit places one arriving instance onto the live tree and returns the
// hosting leaf's name. The scoring trace is the instance's averaged I-trace
// as of req.AsOf over req.TrainWeeks weeks; an instance below the
// quarantine floor is admitted on its service's reference trace instead of
// failing. Admission never displaces residents: if no leaf can take the
// instance without a breaker violation — or, when demands and capacities
// are declared, without overflowing a capacity dimension — the error wraps
// placement.ErrNoCapacity and the tree is unchanged.
func (r *Runtime) Admit(req AdmitRequest) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.placed {
		return "", ErrNotPlaced
	}
	id, service := req.ID, req.Service
	if id == "" || service == "" {
		return "", errors.New("core: admission needs an instance id and a service")
	}
	if err := req.Demands.Validate(); err != nil {
		return "", fmt.Errorf("core: admission demands for %q: %w", id, err)
	}
	asOf := req.AsOf
	if asOf.IsZero() {
		asOf = r.evalAsOf
	}
	trainWeeks := req.TrainWeeks
	if trainWeeks < 1 {
		trainWeeks = r.fw.cfg.trainWeeks()
	}
	if err := r.ensureOnline(asOf, trainWeeks); err != nil {
		return "", err
	}
	if _, ok := r.online.Leaf(id); ok {
		return "", fmt.Errorf("%w: %q", placement.ErrAlreadyAdmitted, id)
	}
	tr, quarantined, err := r.admissionTrace(id, service, asOf, trainWeeks)
	if err != nil {
		return "", err
	}
	r.onlineTraces[id] = tr
	leaf, err := r.online.Admit(placement.Instance{ID: id, Service: service, Demands: req.Demands})
	if err != nil {
		delete(r.onlineTraces, id)
		if errors.Is(err, placement.ErrNoCapacity) {
			obsRuntimeAdmissionRejects.Inc()
		}
		return "", err
	}
	r.services[id] = service
	if len(req.Demands) > 0 {
		r.demands[id] = req.Demands.Clone()
	}
	if quarantined {
		r.quarantined = append(r.quarantined, id)
		obsQuarantined.Set(float64(len(r.quarantined)))
	} else {
		r.refPool[service] = append(r.refPool[service], tr)
		r.refAll = append(r.refAll, tr)
	}
	obsRuntimeAdmissions.Inc()
	r.fragDelta(r.onlineTraces, true, leaf)
	r.invalidatePlanSnapshot()
	return leaf.Name, nil
}

// RetireInstance removes a previously placed instance from the live tree
// and returns the leaf that hosted it. Unknown instances wrap
// placement.ErrUnknownInstance.
func (r *Runtime) RetireInstance(id string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.placed {
		return "", ErrNotPlaced
	}
	if r.online != nil {
		leaf, err := r.online.Retire(id)
		if err != nil {
			return "", err
		}
		delete(r.onlineTraces, id)
		delete(r.demands, id)
		obsRuntimeRetirements.Inc()
		r.fragDelta(r.onlineTraces, true, leaf)
		r.invalidatePlanSnapshot()
		return leaf.Name, nil
	}
	// No online view is live (e.g. right after Bootstrap or Tick): detach
	// directly; the next admission rebuilds its view from the store anyway.
	for _, leaf := range r.tree.Leaves() {
		for _, rid := range leaf.Instances {
			if rid != id {
				continue
			}
			if !leaf.Detach(id) {
				return "", fmt.Errorf("core: retire bookkeeping failed for %q", id)
			}
			delete(r.demands, id)
			obsRuntimeRetirements.Inc()
			r.fragDelta(r.traces, false, leaf)
			r.invalidatePlanSnapshot()
			return leaf.Name, nil
		}
	}
	return "", fmt.Errorf("%w: %q", placement.ErrUnknownInstance, id)
}

// ensureOnline (re)builds the runtime's online-placement view: averaged
// I-traces for every current resident as of (asOf, trainWeeks), quarantined
// residents filled from reference traces, wrapped in a placement.Online with
// the asynchrony-aware policy. The view is cached between admissions with
// the same window and invalidated by Tick (remapping moves instances).
//
// smoothop:locked mu
func (r *Runtime) ensureOnline(asOf time.Time, trainWeeks int) error {
	if r.online != nil && r.onlineAsOf.Equal(asOf) && r.onlineWeeks == trainWeeks {
		return nil
	}
	traces := make(map[string]timeseries.Series)
	byService := make(map[string][]timeseries.Series)
	var healthy []timeseries.Series
	var quarantined []string
	for _, id := range r.tree.AllInstances() {
		tr, q, err := r.residentTrace(id, asOf, trainWeeks)
		if err != nil {
			return fmt.Errorf("core: admission view for %q: %w", id, err)
		}
		if q.Grade == tracestore.GradeNoData || q.Coverage < r.minCoverage {
			quarantined = append(quarantined, id)
			continue
		}
		traces[id] = tr
		byService[r.services[id]] = append(byService[r.services[id]], tr)
		healthy = append(healthy, tr)
	}
	if err := r.fillReferences(traces, quarantined, byService, healthy); err != nil {
		return fmt.Errorf("core: admission view: %w", err)
	}
	lookup := placement.TraceFn(func(id string) (timeseries.Series, bool) {
		tr, ok := traces[id]
		return tr, ok
	})
	online, err := placement.NewOnline(r.tree, lookup, r.placementCfg())
	if err != nil {
		return fmt.Errorf("core: admission view: %w", err)
	}
	r.online = online
	r.onlineTraces = traces
	r.refPool = byService
	r.refAll = healthy
	r.onlineAsOf = asOf
	r.onlineWeeks = trainWeeks
	// Re-anchor the fragmentation aggregator on the new view's trace map so
	// subsequent admissions can refresh gauges by delta, and drop the cached
	// planning snapshot — it captured the previous trace view.
	r.rebuildFragView(traces, true)
	r.invalidatePlanSnapshot()
	return nil
}

// residentTrace reads one resident's averaged I-trace and grade, treating a
// never-reported instance as an empty window rather than an error.
func (r *Runtime) residentTrace(id string, asOf time.Time, trainWeeks int) (timeseries.Series, tracestore.Quality, error) {
	tr, q, err := r.store.AveragedITraceQuality(id, asOf, trainWeeks)
	if errors.Is(err, tracestore.ErrUnknownInstance) {
		return timeseries.Series{}, tracestore.Quality{Grade: tracestore.GradeNoData}, nil
	}
	if err != nil {
		return timeseries.Series{}, tracestore.Quality{}, err
	}
	return tr, q, nil
}

// admissionTrace resolves the arriving instance's scoring trace: its own
// averaged I-trace when healthy, otherwise its service's reference trace
// (mean of healthy same-service residents, then the fleet-wide mean). The
// boolean reports whether the fallback fired.
//
// smoothop:locked mu
func (r *Runtime) admissionTrace(id, service string, asOf time.Time, trainWeeks int) (timeseries.Series, bool, error) {
	tr, q, err := r.residentTrace(id, asOf, trainWeeks)
	if err != nil {
		return timeseries.Series{}, false, fmt.Errorf("core: admission trace for %q: %w", id, err)
	}
	r.quality[id] = q
	if q.Grade != tracestore.GradeNoData && q.Coverage >= r.minCoverage {
		return tr, false, nil
	}
	ref, ok := meanSeries(r.refPool[service])
	if !ok {
		ref, ok = meanSeries(r.refAll)
	}
	if !ok {
		return timeseries.Series{}, false, ErrAllQuarantined
	}
	obsFallbackTraces.Inc()
	return ref, true, nil
}

// rebuildFragView rebuilds the fragmentation-gauge aggregator from scratch
// over the given trace view and refreshes the gauges. online records which
// view the aggregator's PowerFn captured (the admission view mutates in
// place across admissions, so the captured map stays current until the view
// itself is replaced). Gauges are best-effort: a nil or broken view drops
// the aggregator and leaves the gauges at their last value rather than
// failing the operation.
//
// smoothop:locked mu
func (r *Runtime) rebuildFragView(traces map[string]timeseries.Series, online bool) {
	if traces == nil {
		r.fragAgg = nil
		return
	}
	view := traces // local so the PowerFn closure does not capture guarded state
	agg, err := powertree.NewAggregator(r.tree, func(id string) (timeseries.Series, bool) {
		tr, ok := view[id]
		return tr, ok
	})
	if err != nil {
		r.fragAgg = nil
		return
	}
	r.fragAgg = agg
	r.fragViewOnline = online
	obsFragFullRefreshes.Inc()
	r.setFragGauges(agg.Snapshot())
}

// fragDelta refreshes the fragmentation gauges after churn confined to the
// given leaves, folding only those leaves into the cached aggregation. Any
// mismatch — no aggregator yet, the trace view switched, a mark or update
// failure — falls back to a full rebuild, so the gauges never go stale.
//
// smoothop:locked mu
func (r *Runtime) fragDelta(traces map[string]timeseries.Series, online bool, leaves ...*powertree.Node) {
	if r.fragAgg == nil || r.fragViewOnline != online {
		r.rebuildFragView(traces, online)
		return
	}
	if err := r.fragAgg.MarkDirty(leaves...); err != nil {
		r.rebuildFragView(traces, online)
		return
	}
	snap, err := r.fragAgg.Update()
	if err != nil {
		r.rebuildFragView(traces, online)
		return
	}
	obsFragDeltaRefreshes.Inc()
	r.setFragGauges(snap)
}

// setFragGauges publishes per-level fragmentation rates computed from an
// aggregation snapshot. Best-effort, like the refresh paths above.
//
// smoothop:locked mu
func (r *Runtime) setFragGauges(aggs *powertree.Aggregates) {
	rows, err := metrics.FragmentationRatesFrom(r.tree, aggs)
	if err != nil {
		return
	}
	for _, row := range rows {
		if g := fragGauge(row.Level); g != nil {
			g.Set(row.RatePct)
		}
	}
}

// FragmentationRates reports the tree's current power-fragmentation rates
// per level, computed from the latest trace view (the admission view when
// one is live, otherwise the last Bootstrap/Tick traces).
func (r *Runtime) FragmentationRates() ([]metrics.FragmentationRow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.placed {
		return nil, ErrNotPlaced
	}
	traces := r.onlineTraces
	if traces == nil {
		traces = r.traces
	}
	return metrics.FragmentationRates(r.tree, func(id string) (timeseries.Series, bool) {
		tr, ok := traces[id]
		return tr, ok
	})
}

// MultiFragmentationRates is FragmentationRates extended with per-dimension
// stranded-capacity rows (metrics.MultiFragmentationRates), resolving
// instance demands the same way placement does: admission-time demands from
// the runtime's ledger win, then any resolver configured via
// RuntimeConfig.Placement.Demands. On a power-only tree — no declared
// capacities, or no known demands — it returns exactly the power rows.
func (r *Runtime) MultiFragmentationRates() ([]metrics.FragmentationRow, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.placed {
		return nil, ErrNotPlaced
	}
	traces := r.onlineTraces
	if traces == nil {
		traces = r.traces
	}
	// The demand closure is only invoked inside this call, under mu.
	return metrics.MultiFragmentationRates(r.tree, func(id string) (timeseries.Series, bool) {
		tr, ok := traces[id]
		return tr, ok
	}, r.placementCfg().Demands)
}

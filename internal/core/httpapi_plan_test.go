package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/plan"
)

// planFixture serves a bootstrapped runtime through a planner with the given
// limits. Returns the server plus the runtime and its fixture companions so
// tests can race direct mutations against HTTP planning.
func planFixture(t *testing.T, cfg plan.Config) (*httptest.Server, *Runtime, []placement.Instance, []placement.Instance, time.Time) {
	t.Helper()
	rt, placed, held, trainEnd := admissionFixture(t)
	clock := func() time.Time { return trainEnd }
	planner, err := plan.NewService(rt.PlanSnapshot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HTTPHandlerWithPlanner(rt, planner, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)
	return srv, rt, placed, held, trainEnd
}

func TestHTTPPlanQueries(t *testing.T) {
	srv, rt, placed, _, _ := planFixture(t, plan.Config{})
	client := srv.Client()
	url := srv.URL + "/v1/plan"
	leaf := rt.Tree().Leaves()[0].Name

	post := func(body string) *plan.Result {
		t.Helper()
		resp := postJSON(t, client, url, body)
		if resp.StatusCode != http.StatusOK {
			code, msg := decodeEnvelope(t, resp)
			t.Fatalf("POST %s = %d (%s: %s)", body, resp.StatusCode, code, msg)
		}
		var res plan.Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return &res
	}

	res := post(`{"kind":"replace_service","service":"` + placed[0].Service + `"}`)
	if res.Kind != plan.KindReplaceService || res.Replaced == 0 || res.Policy != "asynchrony" {
		t.Fatalf("replace_service result = %+v", res)
	}
	if res.Before.SumOfLeafPeaksWatts <= 0 || len(res.After.Fragmentation) == 0 {
		t.Fatalf("replace_service reports incomplete: %+v", res)
	}

	res = post(`{"kind":"add_instances","archetype":"` + placed[0].Service + `","count":2}`)
	if res.Kind != plan.KindAddInstances || res.Admitted+res.Rejected != 2 {
		t.Fatalf("add_instances result = %+v", res)
	}

	res = post(`{"kind":"trip_breaker","node":"` + leaf + `","budget_fraction":0.5}`)
	if res.Kind != plan.KindTripBreaker || res.Trip == nil || !res.Trip.Applied {
		t.Fatalf("trip_breaker result = %+v", res)
	}
}

func TestHTTPPlanErrors(t *testing.T) {
	srv, _, _, _, _ := planFixture(t, plan.Config{})
	client := srv.Client()
	url := srv.URL + "/v1/plan"

	cases := []struct {
		name, body, wantCode string
		wantStatus           int
	}{
		{"missing kind", `{}`, "bad_request", http.StatusBadRequest},
		{"unknown kind", `{"kind":"explode"}`, "bad_request", http.StatusBadRequest},
		{"bad fraction", `{"kind":"trip_breaker","node":"dc","budget_fraction":2}`, "bad_request", http.StatusBadRequest},
		{"unknown service", `{"kind":"replace_service","service":"no-such"}`, "unknown_service", http.StatusNotFound},
		{"unknown archetype", `{"kind":"add_instances","archetype":"no-such","count":1}`, "unknown_service", http.StatusNotFound},
		{"unknown node", `{"kind":"trip_breaker","node":"no/such/node"}`, "unknown_node", http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := postJSON(t, client, url, tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if code, _ := decodeEnvelope(t, resp); code != tc.wantCode {
			t.Errorf("%s: code = %q, want %q", tc.name, code, tc.wantCode)
		}
	}

	// GET is not allowed on /v1/plan.
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestHTTPPlanNotPlaced pins the 409 envelope for planning against a runtime
// that has never bootstrapped.
func TestHTTPPlanNotPlaced(t *testing.T) {
	rt, _, _, trainEnd := runtimeFixture(t)
	clock := func() time.Time { return trainEnd }
	srv := httptest.NewServer(HTTPHandlerWithObs(rt, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)

	resp := postJSON(t, srv.Client(), srv.URL+"/v1/plan", `{"kind":"replace_service","service":"x"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("plan before bootstrap = %d, want 409", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "not_placed" {
		t.Fatalf("code = %q, want not_placed", code)
	}
}

// TestHTTPBodyHardening pins the request-body bugfix sweep on every mutating
// route: the 1 MiB cap (413), unknown fields (400) and trailing data after
// the first JSON value (400) — the latter used to be silently accepted.
func TestHTTPBodyHardening(t *testing.T) {
	srv, _, _, held, _ := planFixture(t, plan.Config{})
	client := srv.Client()

	oversized := `{"id":"` + strings.Repeat("x", 1<<20) + `","service":"y"}`
	routes := []struct{ name, url, ok string }{
		{"instances", srv.URL + "/v1/instances", `{"id":"` + held[0].ID + `","service":"` + held[0].Service + `"}`},
		{"plan", srv.URL + "/v1/plan", `{"kind":"replace_service","service":"x"}`},
	}
	for _, route := range routes {
		resp := postJSON(t, client, route.url, oversized)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized: status = %d, want 413", route.name, resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != "request_too_large" {
			t.Errorf("%s oversized: code = %q, want request_too_large", route.name, code)
		}

		resp = postJSON(t, client, route.url, `{"bogus_field":1}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s unknown field: status = %d, want 400", route.name, resp.StatusCode)
		}
		if code, msg := decodeEnvelope(t, resp); code != "bad_request" || !strings.Contains(msg, "unknown field") {
			t.Errorf("%s unknown field: got %q/%q", route.name, code, msg)
		}

		resp = postJSON(t, client, route.url, route.ok+` {"second":"value"}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s trailing JSON: status = %d, want 400", route.name, resp.StatusCode)
		}
		if code, msg := decodeEnvelope(t, resp); code != "bad_request" || !strings.Contains(msg, "trailing") {
			t.Errorf("%s trailing JSON: got %q/%q", route.name, code, msg)
		}

		resp = postJSON(t, client, route.url, route.ok+` garbage`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s trailing garbage: status = %d, want 400", route.name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPPlanShedRetryAfter parks one query inside the planner (via a
// blocking snapshot source) and pins that the next query is shed with the
// 429 envelope and a positive Retry-After hint.
func TestHTTPPlanShedRetryAfter(t *testing.T) {
	rt, _, _, trainEnd := admissionFixture(t)
	clock := func() time.Time { return trainEnd }
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	planner, err := plan.NewService(func() (*plan.Snapshot, error) {
		entered <- struct{}{}
		<-block
		return rt.PlanSnapshot()
	}, plan.Config{MaxInFlight: 1, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HTTPHandlerWithPlanner(rt, planner, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)
	client := srv.Client()
	url := srv.URL + "/v1/plan"
	body := `{"kind":"trip_breaker","node":"` + rt.Tree().Name + `","budget_fraction":0.9}`

	done := make(chan int, 1)
	go func() {
		resp := postJSON(t, client, url, body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered // the only slot is now held by the parked query

	resp := postJSON(t, client, url, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent query = %d, want 429", resp.StatusCode)
	}
	retry := resp.Header.Get("Retry-After")
	if secs, err := time.ParseDuration(retry + "s"); err != nil || secs < time.Second {
		t.Fatalf("Retry-After = %q, want a positive whole-second hint", retry)
	}
	if code, _ := decodeEnvelope(t, resp); code != "overloaded" {
		t.Fatalf("shed code = %q, want overloaded", code)
	}

	close(block)
	if status := <-done; status != http.StatusOK {
		t.Fatalf("parked query = %d, want 200", status)
	}
	// The slot has drained: the planner admits queries again.
	resp = postJSON(t, client, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovery = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPPlanDeadline(t *testing.T) {
	srv, _, placed, _, _ := planFixture(t, plan.Config{Deadline: time.Nanosecond})
	resp := postJSON(t, srv.Client(), srv.URL+"/v1/plan",
		`{"kind":"replace_service","service":"`+placed[0].Service+`"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nanosecond deadline = %d, want 503", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "deadline_exceeded" {
		t.Fatalf("code = %q, want deadline_exceeded", code)
	}
}

// encodePlanBody reproduces writeJSONStatus's encoding (two-space indent plus
// the encoder's trailing newline), so oracle results can be compared against
// raw HTTP bodies byte for byte.
func encodePlanBody(t *testing.T, v any) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestHTTPPlanFrozenSnapshotRace is the isolation acceptance test: concurrent
// /v1/plan queries race Tick and AdmitInstance on the live runtime, while the
// planner serves a snapshot frozen before the churn. Every HTTP response must
// be byte-identical to a serial oracle evaluation of the same query on that
// frozen snapshot (computed at workers=1; the service runs at workers=8, so
// this also pins worker-count independence). Run with -race.
func TestHTTPPlanFrozenSnapshotRace(t *testing.T) {
	rt, placed, held, trainEnd := admissionFixture(t)
	clock := func() time.Time { return trainEnd }
	snap, err := rt.PlanSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	planner, err := plan.NewService(func() (*plan.Snapshot, error) { return snap, nil },
		plan.Config{MaxInFlight: 64, Deadline: time.Minute, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HTTPHandlerWithPlanner(rt, planner, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)
	client := srv.Client()
	url := srv.URL + "/v1/plan"

	queries := []plan.Query{
		{Kind: plan.KindReplaceService, Service: placed[0].Service},
		{Kind: plan.KindAddInstances, Archetype: placed[0].Service, Count: 2},
		{Kind: plan.KindTripBreaker, Node: rt.Tree().Leaves()[0].Name, BudgetFraction: 0.5},
	}
	oracle := make([]string, len(queries))
	bodies := make([]string, len(queries))
	for i, q := range queries {
		res, err := snap.Evaluate(t.Context(), q, 1)
		if err != nil {
			t.Fatalf("oracle %s: %v", q.Kind, err)
		}
		oracle[i] = encodePlanBody(t, res)
		raw, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = string(raw)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)

	// Churn the live runtime: admissions, retirements, and a re-optimizing
	// tick, all of which invalidate the runtime's own snapshot cache — but
	// must never reach into the frozen snapshot the planner serves.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, h := range held {
			_, _ = rt.AdmitInstance(h.ID, h.Service, trainEnd, 2)
		}
		for _, h := range held {
			_, _ = rt.RetireInstance(h.ID)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := rt.Tick(trainEnd.Add(7*24*time.Hour), 0); err != nil {
				errs <- "tick: " + err.Error()
				return
			}
		}
	}()

	const requesters = 6
	for g := 0; g < requesters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := range queries {
					resp, err := client.Post(url, "application/json", strings.NewReader(bodies[i]))
					if err != nil {
						errs <- "post: " + err.Error()
						return
					}
					var got bytes.Buffer
					if _, err := got.ReadFrom(resp.Body); err != nil {
						errs <- "read: " + err.Error()
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- "status " + resp.Status + ": " + got.String()
						return
					}
					if got.String() != oracle[i] {
						errs <- "response for " + queries[i].Kind + " diverged from the frozen-snapshot oracle"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

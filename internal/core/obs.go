package core

import (
	"repro/internal/obs"
	"repro/internal/powertree"
)

// Runtime metrics (see DESIGN.md "Observability"). Ingest and Tick are
// serial entry points, so the counters are exact and replay-deterministic;
// the tick timing histogram is exempt.
var (
	obsIngestSamples = obs.Default().Counter("smoothop_runtime_ingest_samples_total",
		"Power readings ingested into the trace store.")
	obsTicks = obs.Default().Counter("smoothop_runtime_ticks_total",
		"Completed drift-monitor ticks.")
	obsTickSwaps = obs.Default().Counter("smoothop_runtime_tick_swaps_total",
		"Swaps applied by drift-monitor ticks.")
	obsTickSpan = obs.Default().Span("smoothop_runtime_tick_seconds",
		"Wall time of one drift-monitor tick.")

	// Degradation metrics: quarantine, fallback scoring, ingest retries and
	// the emergency capping path. All are updated from the serial
	// Ingest/Bootstrap/Tick entry points, so replays reproduce them exactly.
	obsIngestRetries = obs.Default().Counter("smoothop_runtime_ingest_retries_total",
		"Ingest retries after transient store failures.")
	obsQuarantined = obs.Default().Gauge("smoothop_runtime_quarantined_instances",
		"Instances currently scored from reference traces (below the coverage floor).")
	obsFallbackTraces = obs.Default().Counter("smoothop_runtime_fallback_traces_total",
		"Service reference traces substituted for quarantined instances.")
	obsBreakerTrips = obs.Default().Counter("smoothop_runtime_breaker_trips_total",
		"Breaker violations found at trip-reduced budgets.")
	obsEmergencyThrottles = obs.Default().Counter("smoothop_runtime_emergency_throttles_total",
		"Shedding directives issued by the emergency capping path.")

	// Online admission metrics. AdmitInstance/RetireInstance serialize on the
	// runtime's mutex, so the counters are exact under concurrent HTTP use.
	obsRuntimeAdmissions = obs.Default().Counter("smoothop_runtime_admissions_total",
		"Instances admitted through the runtime's online placement path.")
	obsRuntimeAdmissionRejects = obs.Default().Counter("smoothop_runtime_admission_rejections_total",
		"Online admissions rejected because no leaf could host the instance.")
	obsRuntimeRetirements = obs.Default().Counter("smoothop_runtime_retirements_total",
		"Instances retired through the runtime's online placement path.")
	obsOnlineResyncs = obs.Default().Counter("smoothop_runtime_online_resyncs_total",
		"Tick remaps absorbed by resyncing only the swapped leaves of the cached admission view.")
	obsOnlineDrops = obs.Default().Counter("smoothop_runtime_online_drops_total",
		"Cached admission views dropped wholesale (resync failed or a remapped leaf vanished).")

	// Fragmentation-gauge refresh path: full rebuilds re-aggregate the whole
	// tree (Bootstrap, Tick, view changes), delta refreshes fold in only the
	// leaves an admission or retirement touched.
	obsFragFullRefreshes = obs.Default().Counter("smoothop_runtime_frag_full_refreshes_total",
		"Fragmentation gauge refreshes that re-aggregated the full tree.")
	obsFragDeltaRefreshes = obs.Default().Counter("smoothop_runtime_frag_delta_refreshes_total",
		"Fragmentation gauge refreshes served by the incremental delta aggregator.")

	// Per-level power-fragmentation gauges (the obs registry has no labels,
	// so each tier gets its own series). Refreshed at Bootstrap, Tick and
	// every admission or retirement.
	obsFragDC = obs.Default().Gauge("smoothop_runtime_fragmentation_pct_dc",
		"Power-fragmentation rate at the DC level (percent of capacity stranded).")
	obsFragSuite = obs.Default().Gauge("smoothop_runtime_fragmentation_pct_suite",
		"Power-fragmentation rate at the suite level (percent of capacity stranded).")
	obsFragMSB = obs.Default().Gauge("smoothop_runtime_fragmentation_pct_msb",
		"Power-fragmentation rate at the MSB level (percent of capacity stranded).")
	obsFragSB = obs.Default().Gauge("smoothop_runtime_fragmentation_pct_sb",
		"Power-fragmentation rate at the SB level (percent of capacity stranded).")
	obsFragRPP = obs.Default().Gauge("smoothop_runtime_fragmentation_pct_rpp",
		"Power-fragmentation rate at the RPP level (percent of capacity stranded).")
)

// fragGauge maps a tree level to its fragmentation gauge.
func fragGauge(l powertree.Level) *obs.Gauge {
	switch l {
	case powertree.DC:
		return obsFragDC
	case powertree.Suite:
		return obsFragSuite
	case powertree.MSB:
		return obsFragMSB
	case powertree.SB:
		return obsFragSB
	case powertree.RPP:
		return obsFragRPP
	}
	return nil
}

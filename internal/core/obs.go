package core

import "repro/internal/obs"

// Runtime metrics (see DESIGN.md "Observability"). Ingest and Tick are
// serial entry points, so the counters are exact and replay-deterministic;
// the tick timing histogram is exempt.
var (
	obsIngestSamples = obs.Default().Counter("smoothop_runtime_ingest_samples_total",
		"Power readings ingested into the trace store.")
	obsTicks = obs.Default().Counter("smoothop_runtime_ticks_total",
		"Completed drift-monitor ticks.")
	obsTickSwaps = obs.Default().Counter("smoothop_runtime_tick_swaps_total",
		"Swaps applied by drift-monitor ticks.")
	obsTickSpan = obs.Default().Span("smoothop_runtime_tick_seconds",
		"Wall time of one drift-monitor tick.")
)

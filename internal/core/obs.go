package core

import "repro/internal/obs"

// Runtime metrics (see DESIGN.md "Observability"). Ingest and Tick are
// serial entry points, so the counters are exact and replay-deterministic;
// the tick timing histogram is exempt.
var (
	obsIngestSamples = obs.Default().Counter("smoothop_runtime_ingest_samples_total",
		"Power readings ingested into the trace store.")
	obsTicks = obs.Default().Counter("smoothop_runtime_ticks_total",
		"Completed drift-monitor ticks.")
	obsTickSwaps = obs.Default().Counter("smoothop_runtime_tick_swaps_total",
		"Swaps applied by drift-monitor ticks.")
	obsTickSpan = obs.Default().Span("smoothop_runtime_tick_seconds",
		"Wall time of one drift-monitor tick.")

	// Degradation metrics: quarantine, fallback scoring, ingest retries and
	// the emergency capping path. All are updated from the serial
	// Ingest/Bootstrap/Tick entry points, so replays reproduce them exactly.
	obsIngestRetries = obs.Default().Counter("smoothop_runtime_ingest_retries_total",
		"Ingest retries after transient store failures.")
	obsQuarantined = obs.Default().Gauge("smoothop_runtime_quarantined_instances",
		"Instances currently scored from reference traces (below the coverage floor).")
	obsFallbackTraces = obs.Default().Counter("smoothop_runtime_fallback_traces_total",
		"Service reference traces substituted for quarantined instances.")
	obsBreakerTrips = obs.Default().Counter("smoothop_runtime_breaker_trips_total",
		"Breaker violations found at trip-reduced budgets.")
	obsEmergencyThrottles = obs.Default().Counter("smoothop_runtime_emergency_throttles_total",
		"Shedding directives issued by the emergency capping path.")
)

package core

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// metricsFixture builds one handler over a fresh runtime and a fresh
// registry, so the exposition reflects only this handler's activity.
func metricsFixture(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	rt, _, _, _ := runtimeFixture(t)
	clock := func() time.Time { return time.Date(2016, 8, 8, 0, 0, 0, 0, time.UTC) }
	reg := obs.NewWithClock(clock)
	srv := httptest.NewServer(HTTPHandlerWithObs(rt, clock, reg))
	t.Cleanup(srv.Close)
	return srv, reg
}

// TestHTTPMetricsStableAcrossRuns builds two identical handler+registry
// pairs, performs the same single scrape against each, and requires
// byte-identical /metrics bodies: sorted names, deterministic values.
func TestHTTPMetricsStableAcrossRuns(t *testing.T) {
	scrape := func() string {
		srv, _ := metricsFixture(t)
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics status = %d", resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != obs.ContentType {
			t.Fatalf("Content-Type = %q, want %q", got, obs.ContentType)
		}
		return string(body)
	}
	a, b := scrape(), scrape()
	if a != b {
		t.Fatalf("two identical runs produced different /metrics output:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"# TYPE smoothop_http_requests_total counter",
		"smoothop_http_requests_total 1",
		"smoothop_http_errors_total 0",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, a)
		}
	}
	// Names must appear in sorted order.
	var last string
	for _, line := range strings.Split(a, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if name < last {
			t.Fatalf("metric %q served after %q: output not sorted", name, last)
		}
		last = name
	}
}

// TestHTTPMethodRejection checks the operational-bugfix contract: every
// route answers non-GET with 405, an Allow header, and a bumped error
// counter.
func TestHTTPMethodRejection(t *testing.T) {
	srv, reg := metricsFixture(t)
	for _, path := range []string{"/healthz", "/status", "/tree", "/history", "/metrics"} {
		resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status = %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodGet {
			t.Errorf("POST %s Allow = %q, want GET", path, got)
		}
	}
	if got := reg.Counter("smoothop_http_errors_total", "").Value(); got != 5 {
		t.Errorf("error counter = %d, want 5 (one per rejected POST)", got)
	}
	if got := reg.Counter("smoothop_http_requests_total", "").Value(); got != 5 {
		t.Errorf("request counter = %d, want 5", got)
	}
}

package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/powertree"
)

// capacitateTree gives every leaf the same capacity vector and re-derives
// interior capacities bottom-up, turning a power-only fixture tree into a
// multi-resource one.
func capacitateTree(tree *powertree.Node, leafCaps powertree.ResourceVector) {
	var derive func(n *powertree.Node)
	derive = func(n *powertree.Node) {
		if n.IsLeaf() {
			n.Capacities = leafCaps.Clone()
			return
		}
		for _, c := range n.Children {
			derive(c)
		}
		n.Capacities = powertree.SumCapacities(n.Children)
	}
	derive(tree)
}

// multiFragFixture serves a bootstrapped runtime whose tree declares a "gpu"
// capacity of 4 per leaf. Returns the server, held-out instances, the leaf
// count and the training end.
func multiFragFixture(t *testing.T) (*httptest.Server, []heldOut, int, time.Time) {
	t.Helper()
	rt, _, held, trainEnd := admissionFixture(t)
	capacitateTree(rt.tree, powertree.ResourceVector{"gpu": 4})
	clock := func() time.Time { return trainEnd }
	srv := httptest.NewServer(HTTPHandlerWithObs(rt, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)
	outs := make([]heldOut, len(held))
	for i, inst := range held {
		outs[i] = heldOut{ID: inst.ID, Service: inst.Service}
	}
	return srv, outs, len(rt.tree.Leaves()), trainEnd
}

func getFragRows(t *testing.T, client *http.Client, url string) []fragRowView {
	t.Helper()
	resp, err := client.Get(url + "/v1/fragmentation")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET /v1/fragmentation = %d (body %s)", resp.StatusCode, raw)
	}
	var rows []fragRowView
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return rows
}

func TestHTTPFragmentationMultiDim(t *testing.T) {
	srv, held, leaves, _ := multiFragFixture(t)
	client := srv.Client()

	rows := getFragRows(t, client, srv.URL)
	if len(rows) == 0 || rows[0].Dimension != powertree.PowerDimension {
		t.Fatalf("rows must lead with power: %+v", rows)
	}
	dcGpu := func(rows []fragRowView) (fragRowView, bool) {
		for _, row := range rows {
			if row.Level == "DC" && row.Dimension == "gpu" {
				return row, true
			}
		}
		return fragRowView{}, false
	}
	row, ok := dcGpu(rows)
	if !ok {
		t.Fatalf("no DC gpu row in %+v", rows)
	}
	want := float64(4 * leaves)
	if row.Capacity != want || row.Headroom != want || row.Stranded != 0 {
		t.Fatalf("pristine DC gpu row = %+v, want capacity/headroom %v", row, want)
	}

	// Admit one instance that consumes a gpu; the report must reflect it.
	body, _ := json.Marshal(map[string]any{
		"id": held[0].ID, "service": held[0].Service,
		"demands": map[string]float64{"gpu": 1},
	})
	resp := postJSON(t, client, srv.URL+"/v1/instances", string(body))
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST with demands = %d, want 201 (body %s)", resp.StatusCode, raw)
	}
	resp.Body.Close()
	row, ok = dcGpu(getFragRows(t, client, srv.URL))
	if !ok {
		t.Fatal("DC gpu row vanished after admission")
	}
	if row.Headroom != want-1 {
		t.Fatalf("DC gpu headroom after admission = %v, want %v", row.Headroom, want-1)
	}

	// Retiring the instance returns the gpu.
	resp = doDelete(t, client, srv.URL+"/v1/instances/"+held[0].ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	row, _ = dcGpu(getFragRows(t, client, srv.URL))
	if row.Headroom != want {
		t.Fatalf("DC gpu headroom after retire = %v, want %v", row.Headroom, want)
	}

	// Method discipline: POST is not allowed.
	resp = postJSON(t, client, srv.URL+"/v1/fragmentation", "{}")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/fragmentation = %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodGet {
		t.Fatalf("Allow = %q, want GET", got)
	}
	if code, _ := decodeEnvelope(t, resp); code != "method_not_allowed" {
		t.Fatalf("code = %q, want method_not_allowed", code)
	}
}

func TestHTTPFragmentationPowerOnly(t *testing.T) {
	srv, _, _, _ := instancesFixture(t)
	rows := getFragRows(t, srv.Client(), srv.URL)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		if row.Dimension != powertree.PowerDimension {
			t.Fatalf("power-only tree produced row %+v", row)
		}
	}
}

func TestHTTPFragmentationNotPlaced(t *testing.T) {
	rt, _, _, trainEnd := runtimeFixture(t)
	clock := func() time.Time { return trainEnd }
	srv := httptest.NewServer(HTTPHandlerWithObs(rt, clock, obs.NewWithClock(clock)))
	t.Cleanup(srv.Close)
	resp, err := srv.Client().Get(srv.URL + "/v1/fragmentation")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("GET before bootstrap = %d, want 409", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "not_placed" {
		t.Fatalf("code = %q, want not_placed", code)
	}
}

func TestHTTPInstancesBadDemands(t *testing.T) {
	srv, held, _, _ := multiFragFixture(t)
	client := srv.Client()
	url := srv.URL + "/v1/instances"

	cases := []struct{ name, demands string }{
		{"negative", `{"gpu":-1}`},
		{"reserved power", `{"power":1}`},
		{"unnamed dimension", `{"":1}`},
	}
	for _, tc := range cases {
		body := `{"id":"` + held[0].ID + `","service":"` + held[0].Service + `","demands":` + tc.demands + `}`
		resp := postJSON(t, client, url, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if code, _ := decodeEnvelope(t, resp); code != "bad_request" {
			t.Errorf("%s: code = %q, want bad_request", tc.name, code)
		}
	}

	// A demand no leaf can hold is a capacity conflict, not a 400.
	body := `{"id":"` + held[0].ID + `","service":"` + held[0].Service + `","demands":{"gpu":5}}`
	resp := postJSON(t, client, url, body)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("oversized demand: status = %d, want 409", resp.StatusCode)
	}
	if code, _ := decodeEnvelope(t, resp); code != "no_capacity" {
		t.Errorf("oversized demand: code = %q, want no_capacity", code)
	}
}

package core

import (
	"fmt"

	"repro/internal/plan"
)

// What-if planning wiring: the runtime exports snapshot-isolated captures of
// its placement for internal/plan, so POST /v1/plan queries evaluate against
// a copy without holding the runtime lock or blocking Tick/admissions.
//
// Snapshots are cached under mu and invalidated by every placement or
// trace-view mutation (Bootstrap, Tick, admissions, retirements, admission-
// view rebuilds). Between mutations, every concurrent planner shares one
// snapshot — and with it the lazily computed "before" report — so a burst of
// operator queries costs one O(nodes + instances) capture, not one per
// request.

// PlanSnapshot returns the current placement as a plan.Snapshot: a private
// clone of the tree plus the freshest trace view (the cached admission view
// when one is live, otherwise the latest Bootstrap/Tick traces — the same
// preference order as FragmentationRates). The snapshot is immutable; the
// runtime may keep mutating after the capture without affecting it.
func (r *Runtime) PlanSnapshot() (*plan.Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.placed {
		return nil, ErrNotPlaced
	}
	if r.planSnap != nil {
		return r.planSnap, nil
	}
	traces := r.onlineTraces
	if traces == nil {
		traces = r.traces
	}
	snap, err := plan.NewSnapshot(r.tree, traces, r.services, r.evalAsOf, r.store.Step())
	if err != nil {
		return nil, fmt.Errorf("core: plan snapshot: %w", err)
	}
	r.planSnap = snap
	return snap, nil
}

// invalidatePlanSnapshot drops the cached snapshot after a mutation; the
// next PlanSnapshot re-captures. Snapshots already handed out stay valid —
// they own their state — they just describe the pre-mutation placement.
//
// smoothop:locked mu
func (r *Runtime) invalidatePlanSnapshot() {
	r.planSnap = nil
}

package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/placement"
	"repro/internal/powertree"
	"repro/internal/tracestore"
)

var dEpoch = time.Date(2016, 8, 1, 0, 0, 0, 0, time.UTC)

const dWeek = 7 * 24 * time.Hour

func TestRuntimeConfigValidation(t *testing.T) {
	fw := New(Config{})
	store := tracestore.New(tracestore.Config{})
	mkTree := func() *powertree.Node {
		tree, err := powertree.Build(powertree.TopologySpec{
			Name: "v", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	cases := []struct {
		name string
		cfg  RuntimeConfig
		want error
	}{
		{"negative score floor", RuntimeConfig{ScoreFloor: -0.1}, ErrBadScoreFloor},
		{"negative max swaps", RuntimeConfig{MaxSwapsPerTick: -1}, ErrBadMaxSwaps},
		{"negative min coverage", RuntimeConfig{MinCoverage: -0.2}, ErrBadMinCoverage},
		{"min coverage one", RuntimeConfig{MinCoverage: 1}, ErrBadMinCoverage},
		{"negative retries", RuntimeConfig{IngestRetries: -2}, ErrBadRetries},
		{"negative backoff", RuntimeConfig{RetryBackoff: -time.Second}, ErrBadRetries},
		{"all defaults", RuntimeConfig{}, nil},
		{"explicit values", RuntimeConfig{ScoreFloor: 1.5, MaxSwapsPerTick: 8, MinCoverage: 0.7, IngestRetries: 5, RetryBackoff: time.Millisecond}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := NewRuntime(fw, store, mkTree(), tc.cfg)
			if tc.want != nil {
				if !errors.Is(err, tc.want) {
					t.Fatalf("err = %v, want %v", err, tc.want)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if rt.scoreFloor <= 0 || rt.maxSwaps <= 0 || rt.minCoverage <= 0 || rt.retries <= 0 {
				t.Fatalf("defaults not applied: %+v", rt)
			}
		})
	}
}

// degradeFixture builds a 2-leaf tree with four instances on synthetic
// sinusoidal traces and streams `weeks` weeks into the runtime via Ingest
// (so fault injection applies), skipping instances named in dark for the
// final week.
func degradeFixture(t *testing.T, cfg RuntimeConfig, leafBudget float64, weeks int, dark map[string]bool) (*Runtime, []placement.Instance, time.Time) {
	t.Helper()
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "d", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: leafBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(tracestore.Config{Step: time.Hour, Retention: time.Duration(weeks+1) * dWeek})
	rt, err := NewRuntime(New(Config{TopServices: 2, Seed: 1}), store, tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	instances := []placement.Instance{
		{ID: "a", Service: "web"}, {ID: "b", Service: "web"},
		{ID: "c", Service: "db"}, {ID: "d", Service: "db"},
	}
	steps := weeks * 168
	for idx, inst := range instances {
		phase := float64(idx) * math.Pi / 3
		for s := 0; s < steps; s++ {
			at := dEpoch.Add(time.Duration(s) * time.Hour)
			if dark[inst.ID] && s >= (weeks-1)*168 {
				continue
			}
			w := 80 + 40*math.Sin(2*math.Pi*float64(s%168)/168+phase)
			if err := rt.Ingest(inst.ID, at, w); err != nil {
				t.Fatalf("ingest %s at %v: %v", inst.ID, at, err)
			}
		}
	}
	return rt, instances, dEpoch.Add(2 * dWeek)
}

func TestTickQuarantineAndFallback(t *testing.T) {
	// Three weeks of data; instance d goes dark for the final (test) week.
	rt, instances, trainEnd := degradeFixture(t, RuntimeConfig{}, 500, 3, map[string]bool{"d": true})
	if err := rt.Bootstrap(instances, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	if n := len(rt.Quarantined()); n != 0 {
		t.Fatalf("bootstrap quarantined %d instances on full history", n)
	}
	rep, err := rt.Tick(trainEnd.Add(dWeek), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "d" {
		t.Fatalf("Quarantined = %v, want [d]", rep.Quarantined)
	}
	if got := rt.Quarantined(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("runtime Quarantined = %v", got)
	}
	q, ok := rt.InstanceQuality("d")
	if !ok || q.Grade != tracestore.GradeNoData {
		t.Fatalf("quality for d = %+v, %v", q, ok)
	}
	if q, ok := rt.InstanceQuality("a"); !ok || q.Grade != tracestore.GradeGood {
		t.Fatalf("quality for a = %+v, %v", q, ok)
	}
	// The tick still produced a full drift report despite the dark instance.
	if rep.WorstNode == "" || rep.SumOfPeaks <= 0 {
		t.Fatalf("degraded tick report: %+v", rep)
	}
}

func TestBootstrapQuarantinesUnknownInstance(t *testing.T) {
	rt, instances, trainEnd := degradeFixture(t, RuntimeConfig{}, 500, 2, nil)
	// A placed instance the store has never heard of: quarantined at
	// bootstrap, placed from its service's reference trace.
	instances = append(instances, placement.Instance{ID: "ghost", Service: "web"})
	if err := rt.Bootstrap(instances, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	got := rt.Quarantined()
	if len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("Quarantined = %v, want [ghost]", got)
	}
	if err := placement.Verify(rt.Tree(), instances); err != nil {
		t.Fatal(err)
	}
}

func TestIngestRetriesTransientErrors(t *testing.T) {
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "r", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Profile{Seed: 7, TransientRate: 1}, time.Hour, tree)
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(tracestore.Config{Step: time.Hour})
	rt, err := NewRuntime(New(Config{}), store, tree, RuntimeConfig{
		Faults: inj, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	rt.sleep = func(d time.Duration) { slept = append(slept, d) }

	// Every first append fails transiently; the bounded retry must land the
	// reading anyway, backing off between attempts.
	if err := rt.Ingest("a", dEpoch, 100); err != nil {
		t.Fatal(err)
	}
	if len(slept) == 0 {
		t.Fatal("no backoff sleeps despite transient failures")
	}
	for i := 1; i < len(slept); i++ {
		if slept[i] != 2*slept[i-1] {
			t.Fatalf("backoff not doubling: %v", slept)
		}
	}
	if _, err := store.Snapshot("a", dEpoch, dEpoch.Add(time.Hour)); err != nil {
		t.Fatalf("reading never landed: %v", err)
	}

	// Non-transient errors surface immediately, without retrying. (Checked
	// on a fault-free runtime so no injected transient precedes the store's
	// own rejection.)
	plain, err := NewRuntime(New(Config{}), tracestore.New(tracestore.Config{Step: time.Hour}), budTree(t), RuntimeConfig{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	slept = nil
	plain.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := plain.Ingest("a", dEpoch, -5); !errors.Is(err, tracestore.ErrBadReading) {
		t.Fatalf("bad reading error = %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("retried a permanent error: %v", slept)
	}
}

// budTree is a tiny tree helper for retry tests.
func budTree(t *testing.T) *powertree.Node {
	t.Helper()
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "p", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestTickEscalatesInjectedTripAndReleases(t *testing.T) {
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "e", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	tripLeaf := tree.Leaves()[0].Name
	trainEnd := dEpoch.Add(2 * dWeek)
	inj, err := faults.New(faults.Profile{
		Seed: 3,
		Trips: []faults.TripWindow{{
			Node: tripLeaf, Start: trainEnd.Add(24 * time.Hour),
			Duration: 48 * time.Hour, BudgetFraction: 0.2,
		}},
	}, time.Hour, tree)
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(tracestore.Config{Step: time.Hour, Retention: 5 * dWeek})
	rt, err := NewRuntime(New(Config{TopServices: 2, Seed: 1}), store, tree, RuntimeConfig{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	instances := []placement.Instance{
		{ID: "a", Service: "web"}, {ID: "b", Service: "web"},
		{ID: "c", Service: "db"}, {ID: "d", Service: "db"},
	}
	for idx, inst := range instances {
		phase := float64(idx) * math.Pi / 3
		for s := 0; s < 4*168; s++ {
			w := 80 + 40*math.Sin(2*math.Pi*float64(s%168)/168+phase)
			if err := rt.Ingest(inst.ID, dEpoch.Add(time.Duration(s)*time.Hour), w); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rt.Bootstrap(instances, trainEnd, 2); err != nil {
		t.Fatal(err)
	}

	// First test week overlaps the trip: the leaf's backup feed carries 20%
	// of nominal budget, the two-instance draw violates it, and the
	// emergency cap arms and sheds.
	rep, err := rt.Tick(trainEnd.Add(dWeek), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ActiveTrips) != 1 || rep.ActiveTrips[0].Node != tripLeaf {
		t.Fatalf("ActiveTrips = %+v", rep.ActiveTrips)
	}
	if len(rep.BreakerTrips) == 0 {
		t.Fatal("no breaker violations at the reduced budget")
	}
	if len(rep.EmergencyThrottles) == 0 {
		t.Fatal("no emergency throttles issued")
	}
	if nodes := rt.EmergencyNodes(); len(nodes) != 1 || nodes[0] != tripLeaf {
		t.Fatalf("EmergencyNodes = %v, want [%s]", nodes, tripLeaf)
	}

	// Second test week: the trip has cleared, so the cap releases.
	rep, err = rt.Tick(trainEnd.Add(2*dWeek), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ActiveTrips) != 0 {
		t.Fatalf("trips still active: %+v", rep.ActiveTrips)
	}
	if nodes := rt.EmergencyNodes(); len(nodes) != 0 {
		t.Fatalf("emergency caps not released: %v", nodes)
	}
	if len(rt.History()) != 2 {
		t.Fatalf("history = %d", len(rt.History()))
	}
}

func TestFlushFaultsDrainsReorderBuffer(t *testing.T) {
	tree, err := powertree.Build(powertree.TopologySpec{
		Name: "f", SuitesPerDC: 1, MSBsPerSuite: 1, SBsPerMSB: 1, RPPsPerSB: 2, LeafBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.New(faults.Profile{Seed: 11, ReorderFraction: 1, ReorderDelaySlots: 6}, time.Hour, tree)
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(tracestore.Config{Step: time.Hour})
	rt, err := NewRuntime(New(Config{}), store, tree, RuntimeConfig{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if err := rt.Ingest("a", dEpoch.Add(time.Duration(s)*time.Hour), 100); err != nil {
			t.Fatal(err)
		}
	}
	// All four readings are held back by the reorder buffer; Flush must land
	// them so the end-of-replay window is complete.
	if err := rt.FlushFaults(); err != nil {
		t.Fatal(err)
	}
	_, q, err := store.SnapshotQuality("a", dEpoch, dEpoch.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if q.Coverage != 1 {
		t.Fatalf("coverage after flush = %v, want 1", q.Coverage)
	}
}

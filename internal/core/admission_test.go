package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/powertree"
)

// admissionFixture bootstraps a runtime on all but the last three instances
// so tests can admit the held-out ones online. Returns the runtime, the
// placed instances, the held-out instances, and the training end.
func admissionFixture(t *testing.T) (*Runtime, []placement.Instance, []placement.Instance, time.Time) {
	t.Helper()
	rt, instances, _, trainEnd := runtimeFixture(t)
	hold := 3
	placed, held := instances[:len(instances)-hold], instances[len(instances)-hold:]
	if err := rt.Bootstrap(placed, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	return rt, placed, held, trainEnd
}

func TestAdmitInstanceLifecycle(t *testing.T) {
	rt, placed, held, trainEnd := admissionFixture(t)
	for _, inst := range held {
		leaf, err := rt.AdmitInstance(inst.ID, inst.Service, trainEnd, 2)
		if err != nil {
			t.Fatalf("admit %q: %v", inst.ID, err)
		}
		if leaf == "" {
			t.Fatalf("admit %q returned empty leaf", inst.ID)
		}
	}
	all := append(append([]placement.Instance(nil), placed...), held...)
	if err := placement.Verify(rt.Tree(), all); err != nil {
		t.Fatal(err)
	}

	// Double admit is a conflict.
	if _, err := rt.AdmitInstance(held[0].ID, held[0].Service, trainEnd, 2); !errors.Is(err, placement.ErrAlreadyAdmitted) {
		t.Fatalf("double admit: %v, want ErrAlreadyAdmitted", err)
	}
	// Bootstrap residents are part of the online view too.
	if _, err := rt.AdmitInstance(placed[0].ID, placed[0].Service, trainEnd, 2); !errors.Is(err, placement.ErrAlreadyAdmitted) {
		t.Fatalf("re-admitting a bootstrapped instance: %v, want ErrAlreadyAdmitted", err)
	}

	// Retire and re-admit.
	leaf, err := rt.RetireInstance(held[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if leaf == "" {
		t.Fatal("retire returned empty leaf")
	}
	if _, err := rt.RetireInstance(held[0].ID); !errors.Is(err, placement.ErrUnknownInstance) {
		t.Fatalf("double retire: %v, want ErrUnknownInstance", err)
	}
	if _, err := rt.AdmitInstance(held[0].ID, held[0].Service, trainEnd, 2); err != nil {
		t.Fatalf("re-admit after retire: %v", err)
	}
	if err := placement.Verify(rt.Tree(), all); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitDefaultsToRuntimeClock admits with a zero asOf: the runtime must
// fall back to its own evaluation time (Bootstrap's, then the latest
// Tick's), not the wall clock — a replay daemon's stored telemetry lives at
// the replay epoch, where time.Now() would find an empty window.
func TestAdmitDefaultsToRuntimeClock(t *testing.T) {
	rt, _, held, trainEnd := admissionFixture(t)
	leaf, err := rt.AdmitInstance(held[0].ID, held[0].Service, time.Time{}, 0)
	if err != nil {
		t.Fatalf("admit with zero asOf: %v", err)
	}
	if leaf == "" {
		t.Fatal("admit with zero asOf returned empty leaf")
	}
	if !rt.evalAsOf.Equal(trainEnd) {
		t.Fatalf("evalAsOf = %v, want bootstrap asOf %v", rt.evalAsOf, trainEnd)
	}

	tickAt := trainEnd.Add(7 * 24 * time.Hour)
	if _, err := rt.Tick(tickAt, 0); err != nil {
		t.Fatal(err)
	}
	if !rt.evalAsOf.Equal(tickAt) {
		t.Fatalf("evalAsOf after tick = %v, want %v", rt.evalAsOf, tickAt)
	}
	if _, err := rt.AdmitInstance(held[1].ID, held[1].Service, time.Time{}, 0); err != nil {
		t.Fatalf("admit with zero asOf after tick: %v", err)
	}
}

func TestAdmitBeforeBootstrap(t *testing.T) {
	rt, instances, _, trainEnd := runtimeFixture(t)
	if _, err := rt.AdmitInstance(instances[0].ID, instances[0].Service, trainEnd, 2); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("admit before bootstrap: %v, want ErrNotPlaced", err)
	}
	if _, err := rt.RetireInstance(instances[0].ID); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("retire before bootstrap: %v, want ErrNotPlaced", err)
	}
}

func TestAdmitValidation(t *testing.T) {
	rt, placed, _, trainEnd := admissionFixture(t)
	if _, err := rt.AdmitInstance("", placed[0].Service, trainEnd, 2); err == nil {
		t.Fatal("empty id must error")
	}
	if _, err := rt.AdmitInstance("new-one", "", trainEnd, 2); err == nil {
		t.Fatal("empty service must error")
	}
}

// TestAdmitQuarantineFallback admits an instance the store has never heard
// of: it must land on its service's reference trace, not fail.
func TestAdmitQuarantineFallback(t *testing.T) {
	rt, placed, _, trainEnd := admissionFixture(t)
	service := placed[0].Service
	leaf, err := rt.AdmitInstance("ghost-0001", service, trainEnd, 2)
	if err != nil {
		t.Fatalf("admitting unreported instance: %v", err)
	}
	if leaf == "" {
		t.Fatal("empty leaf for quarantined admission")
	}
	found := false
	for _, id := range rt.Quarantined() {
		if id == "ghost-0001" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ghost-0001 not quarantined: %v", rt.Quarantined())
	}
}

// TestAdmitNoCapacity starves the tree and checks the rejection leaves it
// untouched.
func TestAdmitNoCapacity(t *testing.T) {
	rt, _, held, trainEnd := admissionFixture(t)
	rt.Tree().Walk(func(n *powertree.Node) { n.Budget = 1 })
	before := rt.Tree().InstanceCount()
	if _, err := rt.AdmitInstance(held[0].ID, held[0].Service, trainEnd, 2); !errors.Is(err, placement.ErrNoCapacity) {
		t.Fatalf("admit into starved tree: %v, want ErrNoCapacity", err)
	}
	if got := rt.Tree().InstanceCount(); got != before {
		t.Fatalf("rejected admission changed instance count %d → %d", before, got)
	}
}

// TestRetireWithoutOnlineView retires straight after Bootstrap, before any
// admission built the online view.
func TestRetireWithoutOnlineView(t *testing.T) {
	rt, placed, _, _ := admissionFixture(t)
	leaf, err := rt.RetireInstance(placed[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if leaf == "" {
		t.Fatal("retire returned empty leaf")
	}
	if _, err := rt.RetireInstance("never-heard-of"); !errors.Is(err, placement.ErrUnknownInstance) {
		t.Fatalf("retiring unknown: %v, want ErrUnknownInstance", err)
	}
}

// TestTickRetainsOnlineView checks that the cached admission view survives a
// tick: a clean remap keeps it (resyncing only swapped leaves) so
// retirements and windowed admissions reuse it directly, and only a
// reconciliation failure drops it wholesale.
func TestTickRetainsOnlineView(t *testing.T) {
	rt, _, held, trainEnd := admissionFixture(t)
	if _, err := rt.AdmitInstance(held[0].ID, held[0].Service, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Tick(trainEnd.Add(7*24*time.Hour), 0); err != nil {
		t.Fatal(err)
	}
	if rt.online == nil {
		t.Fatal("tick dropped the online view despite a clean remap")
	}
	if _, ok := rt.online.Leaf(held[0].ID); !ok {
		t.Fatalf("retained view lost track of %s", held[0].ID)
	}
	// The view is still keyed at its original window, so an explicitly
	// windowed admission reuses it without a rebuild...
	if _, err := rt.AdmitInstance(held[1].ID, held[1].Service, trainEnd, 2); err != nil {
		t.Fatalf("admit after tick: %v", err)
	}
	// ...and a retirement works against it directly.
	if _, err := rt.RetireInstance(held[0].ID); err != nil {
		t.Fatalf("retire after tick: %v", err)
	}

	// A remap that swapped real leaves resyncs in place and keeps the view.
	leaves := rt.Tree().Leaves()
	rt.mu.Lock()
	rt.retargetOnline([]placement.Swap{{NodeA: leaves[0].Name, NodeB: leaves[1].Name}})
	rt.mu.Unlock()
	if rt.online == nil {
		t.Fatal("resync of real leaves dropped the view")
	}

	// A swap naming a leaf the tree does not have must drop the view.
	rt.mu.Lock()
	rt.retargetOnline([]placement.Swap{{NodeA: "no-such-leaf", NodeB: leaves[0].Name}})
	rt.mu.Unlock()
	if rt.online != nil {
		t.Fatal("failed reconciliation kept a stale online view")
	}
	// The next admission rebuilds the view from the store.
	if _, err := rt.AdmitInstance(held[2].ID, held[2].Service, trainEnd, 2); err != nil {
		t.Fatalf("admit after drop: %v", err)
	}
	if rt.online == nil {
		t.Fatal("admission did not rebuild the dropped view")
	}
}

func TestRuntimeFragmentationRates(t *testing.T) {
	rt, _, _, _ := admissionFixture(t)
	rows, err := rt.FragmentationRates()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(powertree.Levels) {
		t.Fatalf("got %d fragmentation rows, want %d", len(rows), len(powertree.Levels))
	}
	for _, row := range rows {
		if row.RatePct < 0 || row.StrandedWatts < 0 {
			t.Fatalf("negative fragmentation at %s: %+v", row.Level, row)
		}
	}

	unplaced, _, _, _ := runtimeFixture(t)
	if _, err := unplaced.FragmentationRates(); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("rates before bootstrap: %v, want ErrNotPlaced", err)
	}
}

// TestAdmitReplayDeterminism runs the same admission sequence on two fresh
// runtimes: decisions and runtime counter deltas must match exactly.
func TestAdmitReplayDeterminism(t *testing.T) {
	type outcome struct {
		leaves     []string
		admissions uint64
		rejects    uint64
		retires    uint64
	}
	run := func() outcome {
		a0, r0, t0 := obsRuntimeAdmissions.Value(), obsRuntimeAdmissionRejects.Value(), obsRuntimeRetirements.Value()
		rt, _, held, trainEnd := admissionFixture(t)
		var leaves []string
		for _, inst := range held {
			leaf, err := rt.AdmitInstance(inst.ID, inst.Service, trainEnd, 2)
			if err != nil {
				t.Fatal(err)
			}
			leaves = append(leaves, leaf)
		}
		if _, err := rt.RetireInstance(held[0].ID); err != nil {
			t.Fatal(err)
		}
		return outcome{
			leaves:     leaves,
			admissions: obsRuntimeAdmissions.Value() - a0,
			rejects:    obsRuntimeAdmissionRejects.Value() - r0,
			retires:    obsRuntimeRetirements.Value() - t0,
		}
	}
	a, b := run(), run()
	if len(a.leaves) != len(b.leaves) {
		t.Fatalf("decision counts differ: %d vs %d", len(a.leaves), len(b.leaves))
	}
	for i := range a.leaves {
		if a.leaves[i] != b.leaves[i] {
			t.Fatalf("decision %d diverged: %q vs %q", i, a.leaves[i], b.leaves[i])
		}
	}
	if a.admissions != b.admissions || a.rejects != b.rejects || a.retires != b.retires {
		t.Fatalf("counter deltas diverged: %+v vs %+v", a, b)
	}
	if a.admissions == 0 || a.retires == 0 {
		t.Fatalf("counters did not move: %+v", a)
	}
}

package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/powertree"
)

func TestHTTPHandler(t *testing.T) {
	rt, instances, _, trainEnd := runtimeFixture(t)
	srv := httptest.NewServer(HTTPHandler(rt))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	// Liveness.
	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Status before bootstrap.
	resp, body = get("/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var status struct {
		Placed    bool `json:"placed"`
		Instances int  `json:"instances"`
		Ticks     int  `json:"ticks"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if status.Placed || status.Instances != 0 {
		t.Fatalf("pre-bootstrap status: %+v", status)
	}

	// Bootstrap and tick, then re-read.
	if err := rt.Bootstrap(instances, trainEnd, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Tick(trainEnd.Add(7*24*time.Hour), 0); err != nil {
		t.Fatal(err)
	}
	_, body = get("/status")
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	if !status.Placed || status.Instances != len(instances) || status.Ticks != 1 {
		t.Fatalf("post-bootstrap status: %+v", status)
	}

	// Tree round-trips through the powertree codec.
	resp, body = get("/tree")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tree: %d", resp.StatusCode)
	}
	tree, err := powertree.LoadTree(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := placement.Verify(tree, instances); err != nil {
		t.Fatalf("served tree incomplete: %v", err)
	}

	// History lists the tick.
	_, body = get("/history")
	var views []struct {
		WorstNode string `json:"worst_node"`
		Swaps     int    `json:"swaps"`
	}
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].WorstNode == "" {
		t.Fatalf("history: %+v", views)
	}

	// Non-GET methods are rejected.
	post, err := http.Post(srv.URL+"/status", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status: %d", post.StatusCode)
	}
}

package forecast

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/workload"
)

var t0 = time.Date(2016, 7, 25, 0, 0, 0, 0, time.UTC)

// weeksOf builds a history of identical (or linearly scaled) weeks.
func weeksOf(weekVals []float64, scales ...float64) timeseries.Series {
	var vals []float64
	for _, s := range scales {
		for _, v := range weekVals {
			vals = append(vals, v*s)
		}
	}
	step := 7 * 24 * time.Hour / time.Duration(len(weekVals))
	return timeseries.New(t0, step, vals)
}

func TestNextWeekStationary(t *testing.T) {
	week := []float64{10, 20, 30, 20, 10, 5, 15}
	hist := weeksOf(week, 1, 1, 1)
	fc, err := NextWeek(hist, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != len(week) {
		t.Fatalf("forecast len = %d", fc.Len())
	}
	// Identical weeks: the forecast is that week, whatever the alpha.
	for i, v := range fc.Values {
		if math.Abs(v-week[i]) > 1e-9 {
			t.Fatalf("stationary forecast at %d = %v, want %v", i, v, week[i])
		}
	}
	// Forecast starts right after the history's whole weeks.
	if !fc.Start.Equal(hist.End()) {
		t.Fatalf("forecast start = %v", fc.Start)
	}
}

func TestNextWeekEWMAWeight(t *testing.T) {
	week := []float64{10, 10, 10, 10, 10, 10, 10}
	hist := weeksOf(week, 1, 2) // latest week doubled
	fc, err := NextWeek(hist, Config{Alpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// EWMA: 0.4·10 + 0.6·20 = 16.
	if math.Abs(fc.Values[0]-16) > 1e-9 {
		t.Fatalf("EWMA = %v, want 16", fc.Values[0])
	}
	naive, err := NextWeek(hist, Config{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naive.Values[0]-20) > 1e-9 {
		t.Fatalf("seasonal naive = %v, want 20", naive.Values[0])
	}
}

func TestNextWeekTrend(t *testing.T) {
	week := []float64{10, 10, 10, 10, 10, 10, 10}
	hist := weeksOf(week, 1, 1.5, 2) // +5/week level trend
	fc, err := NextWeek(hist, Config{Alpha: 1, TrendDamping: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Seasonal naive 20 + trend 5 = 25.
	if math.Abs(fc.Values[0]-25) > 1e-9 {
		t.Fatalf("trended forecast = %v, want 25", fc.Values[0])
	}
	damped, err := NextWeek(hist, Config{Alpha: 1, TrendDamping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(damped.Values[0]-22.5) > 1e-9 {
		t.Fatalf("damped forecast = %v, want 22.5", damped.Values[0])
	}
}

func TestNextWeekErrors(t *testing.T) {
	week := []float64{1, 2, 3, 4, 5, 6, 7}
	short := weeksOf(week, 1)
	if _, err := NextWeek(short, Config{}); err == nil {
		t.Fatal("one week must be too short")
	}
	hist := weeksOf(week, 1, 1)
	if _, err := NextWeek(hist, Config{Alpha: 2}); err != ErrBadConfig {
		t.Fatalf("alpha 2: %v", err)
	}
	if _, err := NextWeek(hist, Config{TrendDamping: -1}); err != ErrBadConfig {
		t.Fatalf("negative damping: %v", err)
	}
	if _, err := NextWeek(timeseries.Series{}, Config{}); err == nil {
		t.Fatal("empty history must error")
	}
}

func TestEvaluate(t *testing.T) {
	pred := timeseries.New(t0, time.Hour, []float64{10, 20})
	actual := timeseries.New(t0, time.Hour, []float64{10, 25})
	acc, err := Evaluate(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	// MAPE = mean(0, 5/25) = 0.1; RMSE = sqrt(25/2); peak error = -20%.
	if math.Abs(acc.MAPE-0.1) > 1e-9 {
		t.Fatalf("MAPE = %v", acc.MAPE)
	}
	if math.Abs(acc.RMSE-math.Sqrt(12.5)) > 1e-9 {
		t.Fatalf("RMSE = %v", acc.RMSE)
	}
	if math.Abs(acc.PeakErrorPct+20) > 1e-9 {
		t.Fatalf("peak error = %v", acc.PeakErrorPct)
	}
	if _, err := Evaluate(pred, timeseries.New(t0, time.Hour, []float64{1})); err == nil {
		t.Fatal("length mismatch must error")
	}
}

// TestForecastBeatsAverageOnSyntheticFleet: on the standard fleet, the
// forecast predicts the held-out week at least as well as the paper's
// multi-week average (they coincide when the fleet is stationary, and the
// forecast must not be materially worse).
func TestForecastBeatsAverageOnSyntheticFleet(t *testing.T) {
	cfg, err := workload.StandardDCConfig(workload.DC2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gen.Step = time.Hour
	fleet, err := workload.Generate(cfg.Gen, workload.StandardProfiles())
	if err != nil {
		t.Fatal(err)
	}
	avg, err := fleet.AveragedITraces(2)
	if err != nil {
		t.Fatal(err)
	}
	test, err := fleet.SplitWeeks(2)
	if err != nil {
		t.Fatal(err)
	}
	weekLen := 7 * 24
	var fcMAPE, avgMAPE float64
	n := 0
	for _, inst := range fleet.Instances {
		hist := inst.Trace.Slice(0, 2*weekLen)
		fc, err := NextWeek(hist, Config{Alpha: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		// Align starts for comparison (forecast starts at week 3 already).
		fcAcc, err := Evaluate(fc, test[inst.ID])
		if err != nil {
			t.Fatal(err)
		}
		avgSeries := avg[inst.ID]
		avgAligned := timeseries.New(test[inst.ID].Start, avgSeries.Step, avgSeries.Values)
		avAcc, err := Evaluate(avgAligned, test[inst.ID])
		if err != nil {
			t.Fatal(err)
		}
		fcMAPE += fcAcc.MAPE
		avgMAPE += avAcc.MAPE
		n++
	}
	fcMAPE /= float64(n)
	avgMAPE /= float64(n)
	if fcMAPE > avgMAPE*1.1 {
		t.Fatalf("forecast MAPE %v materially worse than average %v", fcMAPE, avgMAPE)
	}
}

func TestNextWeekAll(t *testing.T) {
	week := []float64{1, 2, 3, 4, 5, 6, 7}
	table := map[string]timeseries.Series{
		"a": weeksOf(week, 1, 1),
		"b": weeksOf(week, 2, 2),
	}
	out, err := NextWeekAll(table, Config{})
	if err != nil || len(out) != 2 {
		t.Fatalf("NextWeekAll: %v %v", out, err)
	}
	bad := map[string]timeseries.Series{"x": weeksOf(week, 1)}
	if _, err := NextWeekAll(bad, Config{}); err == nil {
		t.Fatal("short history must propagate")
	}
}

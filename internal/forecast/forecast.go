// Package forecast predicts next-week power traces from history — the
// concrete form of Table 1's "proactive planning" checkbox. The paper
// places instances using the *average* of past weeks (Eq. 4); forecasting
// sharpens that: a seasonal-naive base (same time-of-week, latest week)
// blended with the multi-week mean by an EWMA weight, plus a linear
// week-over-week trend on the weekly mean level.
//
// The placement pipeline can run on forecast traces instead of averaged
// I-traces; for stationary fleets the two coincide, and under trend or
// drift the forecast tracks the level the test week will actually show.
package forecast

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/detmap"
	"repro/internal/timeseries"
)

// Config tunes the forecaster.
type Config struct {
	// Alpha is the EWMA weight on the most recent week (0 = plain mean of
	// history, 1 = seasonal naive). 0 defaults to 0.6.
	Alpha float64
	// TrendDamping scales the extrapolated week-over-week level trend
	// (0 disables trend, 1 applies it fully). Negative is invalid.
	TrendDamping float64
}

func (c Config) alpha() float64 {
	if c.Alpha == 0 {
		return 0.6
	}
	return c.Alpha
}

// Errors returned by the forecaster.
var (
	ErrTooShort  = errors.New("forecast: history must cover ≥2 whole weeks")
	ErrBadConfig = errors.New("forecast: invalid configuration")
)

// NextWeek forecasts the week following the history. The history must span
// at least two whole weeks at its native step; a trailing partial week is
// ignored. The returned series starts where the last whole week ended.
func NextWeek(history timeseries.Series, cfg Config) (timeseries.Series, error) {
	if cfg.Alpha < 0 || cfg.Alpha > 1 || cfg.TrendDamping < 0 || cfg.TrendDamping > 1 {
		return timeseries.Series{}, ErrBadConfig
	}
	if history.Step <= 0 {
		return timeseries.Series{}, timeseries.ErrStepInvalid
	}
	weekLen := int(7 * 24 * time.Hour / history.Step)
	weeks := history.Len() / weekLen
	if weekLen == 0 || weeks < 2 {
		return timeseries.Series{}, fmt.Errorf("%w (have %d readings, week is %d)", ErrTooShort, history.Len(), weekLen)
	}
	alpha := cfg.alpha()

	// EWMA over time-of-week slots, oldest week first so the newest week
	// carries weight alpha.
	values := make([]float64, weekLen)
	first := history.Slice(0, weekLen)
	copy(values, first.Values)
	var levels []float64
	levels = append(levels, first.MeanValue())
	for w := 1; w < weeks; w++ {
		week := history.Slice(w*weekLen, (w+1)*weekLen)
		for i := range values {
			values[i] = (1-alpha)*values[i] + alpha*week.Values[i]
		}
		levels = append(levels, week.MeanValue())
	}

	// Week-over-week level trend (mean of successive differences), damped.
	if cfg.TrendDamping > 0 && len(levels) >= 2 {
		var trend float64
		for i := 1; i < len(levels); i++ {
			trend += levels[i] - levels[i-1]
		}
		trend /= float64(len(levels) - 1)
		shift := cfg.TrendDamping * trend
		for i := range values {
			v := values[i] + shift
			if v < 0 {
				v = 0
			}
			values[i] = v
		}
	}

	start := history.Start.Add(time.Duration(weeks*weekLen) * history.Step)
	return timeseries.New(start, history.Step, values), nil
}

// NextWeekAll forecasts every trace in a table.
func NextWeekAll(history map[string]timeseries.Series, cfg Config) (map[string]timeseries.Series, error) {
	out := make(map[string]timeseries.Series, len(history))
	for _, id := range detmap.SortedKeys(history) {
		f, err := NextWeek(history[id], cfg)
		if err != nil {
			return nil, fmt.Errorf("forecast: instance %q: %w", id, err)
		}
		out[id] = f
	}
	return out, nil
}

// Accuracy reports forecast error against an actual week.
type Accuracy struct {
	// MAPE is the mean absolute percentage error over non-zero actuals.
	MAPE float64
	// RMSE is the root mean squared error.
	RMSE float64
	// PeakErrorPct is the relative error of the predicted peak — the
	// quantity provisioning actually cares about.
	PeakErrorPct float64
}

// Evaluate compares a forecast with the realized week.
func Evaluate(predicted, actual timeseries.Series) (Accuracy, error) {
	if predicted.Len() != actual.Len() || predicted.Len() == 0 {
		return Accuracy{}, timeseries.ErrLenMismatch
	}
	var apeSum float64
	apeN := 0
	var sqSum float64
	for i := range actual.Values {
		d := predicted.Values[i] - actual.Values[i]
		sqSum += d * d
		if actual.Values[i] != 0 {
			apeSum += math.Abs(d) / math.Abs(actual.Values[i])
			apeN++
		}
	}
	acc := Accuracy{RMSE: math.Sqrt(sqSum / float64(actual.Len()))}
	if apeN > 0 {
		acc.MAPE = apeSum / float64(apeN)
	}
	if ap := actual.Peak(); ap != 0 {
		acc.PeakErrorPct = 100 * (predicted.Peak() - ap) / ap
	}
	return acc, nil
}

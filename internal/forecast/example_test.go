package forecast_test

import (
	"fmt"
	"time"

	"repro/internal/forecast"
	"repro/internal/timeseries"
)

// Forecasting a trending fleet: seasonal naive plus the week-over-week
// level trend.
func ExampleNextWeek() {
	start := time.Date(2016, 7, 25, 0, 0, 0, 0, time.UTC)
	// Two weeks at one reading per day; the second week runs 7 W hotter.
	vals := []float64{
		100, 110, 120, 110, 100, 90, 95, // week 1
		107, 117, 127, 117, 107, 97, 102, // week 2
	}
	history := timeseries.New(start, 24*time.Hour, vals)

	fc, err := forecast.NextWeek(history, forecast.Config{Alpha: 1, TrendDamping: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("Monday forecast: %.0f\n", fc.Values[0])
	fmt.Printf("Wednesday forecast: %.0f\n", fc.Values[2])
	// Output:
	// Monday forecast: 114
	// Wednesday forecast: 134
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
	t.Setenv(EnvWorkers, "3")
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) with %s=3 = %d, want 3", EnvWorkers, got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("explicit count must beat the env var, got %d", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("bad env var must fall back to GOMAXPROCS, got %d", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative env var must fall back to GOMAXPROCS, got %d", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 203
		counts := make([]int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachDeterministicOutputs(t *testing.T) {
	const n = 500
	run := func(workers int) []float64 {
		out := make([]float64, n)
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			out[i] = float64(i) * 1.5
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	failAt := map[int]bool{7: true, 3: true, 90: true}
	for _, workers := range []int{1, 4, 8} {
		err := ForEach(context.Background(), 100, workers, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: err = %v, want lowest-index error 'fail at 3'", workers, err)
		}
	}
}

func TestForEachErrorSkipsTail(t *testing.T) {
	// After the failure at index 0, far-tail tasks must be skipped (the
	// pool drains without running all n tasks).
	var ran int32
	err := ForEach(context.Background(), 1_000_000, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := atomic.LoadInt32(&ran); n > 100_000 {
		t.Fatalf("ran %d tasks after early failure, expected the tail to be skipped", n)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 50, 4, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(i int) error {
		t.Fatal("fn must not run")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got, err := Map(context.Background(), 64, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	want := errors.New("nope")
	got, err := Map(context.Background(), 8, 4, func(i int) (int, error) {
		if i == 5 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if got != nil {
		t.Fatalf("partial results must be discarded, got %v", got)
	}
}

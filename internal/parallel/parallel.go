// Package parallel is the repository's concurrency substrate: a bounded,
// index-addressed worker pool for the embarrassingly parallel hot paths
// (per-instance asynchrony scoring, independent k-means restarts, per-DC
// experiment fan-out, per-node trace aggregation, independent simulation
// runs).
//
// The contract every caller relies on is determinism: results are written
// by task index, never appended, and any randomness a task needs must be
// derived from (seed, index), never drawn from a shared stream. Under that
// contract a run with N workers is bit-identical to a serial run, so the
// worker count is purely a throughput knob — set it with the SMOOTHOP_WORKERS
// environment variable, a -workers flag, or a per-call argument.
package parallel

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted when a caller does not
// pin a worker count explicitly.
const EnvWorkers = "SMOOTHOP_WORKERS"

// Workers resolves a requested worker count: a positive n wins; otherwise
// the SMOOTHOP_WORKERS environment variable (if set to a positive integer);
// otherwise GOMAXPROCS. The result is always ≥ 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers ≤ 0 means Workers(0)). Tasks are handed out in index order.
//
// Error semantics match a serial loop exactly: the error returned is the one
// from the lowest failing index, and every index below it is guaranteed to
// have run successfully. Indices above a known failure may be skipped.
// Context cancellation counts as the failure of the first index that
// observes it.
//
// fn must be safe to call from multiple goroutines and must confine its
// writes to per-index state (out[i] = ...); under that contract ForEach is
// deterministic for any worker count.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next  atomic.Int64 // next index to hand out, minus one
		bound atomic.Int64 // lowest failing index seen so far, n if none
		mu    sync.Mutex
		errs  map[int]error
		wg    sync.WaitGroup
	)
	next.Store(-1)
	bound.Store(int64(n))
	errs = make(map[int]error)
	fail := func(i int, err error) {
		mu.Lock()
		errs[i] = err
		mu.Unlock()
		for {
			cur := bound.Load()
			if int64(i) >= cur || bound.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) || i > bound.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(int(i), err)
					return
				}
				if err := fn(int(i)); err != nil {
					fail(int(i), err)
				}
			}
		}()
	}
	wg.Wait()
	if idx := bound.Load(); idx < int64(n) {
		mu.Lock()
		defer mu.Unlock()
		return errs[int(idx)]
	}
	return nil
}

// Map runs fn over [0, n) with ForEach's scheduling and collects the results
// in index order. On error the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package sim

import (
	"context"
	"fmt"

	"repro/internal/parallel"
)

// RunMany executes several independent simulation runs concurrently and
// returns their results in input order. Each Run is a sequential stateful
// loop internally (the policy observes its own past decisions), so the
// parallelism is across runs, not within one: core.Reshape uses this to run
// its four strategy simulations side by side. workers ≤ 0 means the package
// default (SMOOTHOP_WORKERS or GOMAXPROCS); results are identical to a
// serial loop for any worker count, and on failure the error of the
// lowest-index failing run is returned.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	return parallel.Map(context.Background(), len(cfgs), workers, func(i int) (*Result, error) {
		res, err := Run(cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("sim: run %d: %w", i, err)
		}
		return res, nil
	})
}

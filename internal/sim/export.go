package sim

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports a run's time series as one CSV table with the columns
// timestamp, per_lc_server_load, lc_throughput, batch_throughput, power —
// the raw material of Fig. 12-style plots.
func (r *Result) WriteCSV(w io.Writer) error {
	if r == nil || r.PerLCServerLoad.Empty() {
		return fmt.Errorf("%w: empty result", ErrModel)
	}
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"timestamp", "per_lc_server_load", "lc_throughput", "batch_throughput", "power"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := 0; i < r.PerLCServerLoad.Len(); i++ {
		rec := []string{
			r.PerLCServerLoad.TimeAt(i).UTC().Format("2006-01-02T15:04:05Z"),
			f(r.PerLCServerLoad.Values[i]),
			f(r.LCThroughput.Values[i]),
			f(r.BatchThroughput.Values[i]),
			f(r.Power.Values[i]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// Summary renders the run's aggregates as a one-paragraph report.
func (r *Result) Summary(policy string) string {
	return fmt.Sprintf(
		"%s: LC served %.0f (dropped %.0f), batch work %.0f, QoS violations %d, cap events %d, power peak %.0f",
		policy, r.TotalLC, r.DroppedLC, r.TotalBatch, r.QoSViolations, r.CapEvents, r.Power.Peak())
}

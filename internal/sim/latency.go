package sim

import (
	"fmt"
	"math"

	"repro/internal/timeseries"
)

// LatencyModel estimates per-request latency of a latency-critical server
// from its utilization with the M/M/1 mean-response-time form
//
//	R(ρ) = S / (1 − ρ)
//
// and a tail amplification factor for the p99 proxy. The knee behaviour the
// paper's guarded threshold protects against ("the load level of each
// server when LC achieves satisfactory QoS", §4.2) emerges naturally: the
// curve is flat below ~0.7 and explodes near saturation.
type LatencyModel struct {
	// ServiceTimeMs is the zero-load service time S.
	ServiceTimeMs float64
	// TailFactor multiplies mean latency into a p99 proxy (ln(100) ≈ 4.6
	// for exponential service times). 0 means 4.6.
	TailFactor float64
	// SLAms is the p99 budget; utilizations whose p99 proxy exceeds it
	// violate the SLA. 0 disables SLA accounting.
	SLAms float64
}

// Validate checks the model.
func (m LatencyModel) Validate() error {
	if m.ServiceTimeMs <= 0 {
		return fmt.Errorf("%w: service time must be positive", ErrModel)
	}
	if m.TailFactor < 0 || m.SLAms < 0 {
		return fmt.Errorf("%w: negative latency parameters", ErrModel)
	}
	return nil
}

func (m LatencyModel) tail() float64 {
	if m.TailFactor == 0 {
		return 4.6
	}
	return m.TailFactor
}

// Mean returns the mean response time at utilization ρ (clamped just below
// saturation so the curve stays finite).
func (m LatencyModel) Mean(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	const capRho = 0.999
	if rho > capRho {
		rho = capRho
	}
	return m.ServiceTimeMs / (1 - rho)
}

// P99 returns the p99 latency proxy at utilization ρ.
func (m LatencyModel) P99(rho float64) float64 {
	return m.Mean(rho) * m.tail()
}

// MeetsSLA reports whether the p99 proxy at ρ fits the SLA. Models without
// an SLA always pass.
func (m LatencyModel) MeetsSLA(rho float64) bool {
	if m.SLAms == 0 {
		return true
	}
	return m.P99(rho) <= m.SLAms
}

// MaxUtilization returns the highest utilization that still meets the SLA —
// the principled way to derive the QoS knee (and hence Lconv's ceiling)
// from a latency budget.
func (m LatencyModel) MaxUtilization() float64 {
	if m.SLAms == 0 {
		return 1
	}
	// S·tail/(1−ρ) ≤ SLA  ⇒  ρ ≤ 1 − S·tail/SLA.
	rho := 1 - m.ServiceTimeMs*m.tail()/m.SLAms
	if rho < 0 {
		return 0
	}
	if rho > 1 {
		return 1
	}
	return rho
}

// LatencyReport summarises latency over a simulated run.
type LatencyReport struct {
	// P99 is the per-step p99 latency proxy series.
	P99 timeseries.Series
	// MeanMs and PeakP99Ms aggregate the run.
	MeanMs, PeakP99Ms float64
	// SLAViolations counts steps whose p99 proxy broke the SLA.
	SLAViolations int
}

// Latency derives the latency report of a completed run from its
// per-LC-server load series.
func Latency(res *Result, m LatencyModel) (LatencyReport, error) {
	if err := m.Validate(); err != nil {
		return LatencyReport{}, err
	}
	if res == nil || res.PerLCServerLoad.Empty() {
		return LatencyReport{}, fmt.Errorf("%w: run has no load series", ErrModel)
	}
	rep := LatencyReport{P99: res.PerLCServerLoad.Clone()}
	var meanSum float64
	for i, rho := range res.PerLCServerLoad.Values {
		p99 := m.P99(rho)
		rep.P99.Values[i] = p99
		meanSum += m.Mean(rho)
		if p99 > rep.PeakP99Ms {
			rep.PeakP99Ms = p99
		}
		if !m.MeetsSLA(rho) {
			rep.SLAViolations++
		}
	}
	rep.MeanMs = meanSum / float64(res.PerLCServerLoad.Len())
	if math.IsNaN(rep.MeanMs) {
		return LatencyReport{}, fmt.Errorf("%w: non-finite latency", ErrModel)
	}
	return rep, nil
}

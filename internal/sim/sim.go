package sim

import (
	"fmt"

	"repro/internal/timeseries"
)

// State is what a reshaping policy observes at each step.
type State struct {
	// Step is the current step index.
	Step int
	// OfferedLoad is the LC load offered this step, in units of one
	// server's guarded capacity (so OfferedLoad/NLC is the per-original-
	// LC-server load when no conversion server helps).
	OfferedLoad float64
	// AvgLCLoadOriginal is the average per-server load over the original LC
	// servers, assuming offered load spreads over original + currently
	// LC-converted servers (the §4.2 trigger signal).
	AvgLCLoadOriginal float64
	// ConvLC is the number of conversion servers currently in LC mode.
	ConvLC int
	// BatchFreq is the current Batch relative frequency.
	BatchFreq float64
}

// Action is what a policy decides for the next step.
type Action struct {
	// ConvLC is how many of the base conversion pool to run in LC mode; the
	// remainder runs Batch.
	ConvLC int
	// ThrottleConvLC is how many of the throttle-enabled extra pool to run
	// in LC mode; the remainder idles in Batch mode.
	ThrottleConvLC int
	// BatchFreq is the relative DVFS frequency for Batch servers.
	BatchFreq float64
}

// Policy decides conversion-server modes and Batch frequency each step.
type Policy interface {
	// Decide returns the action for this step given the observed state.
	Decide(s State) Action
	// Name labels the policy in reports.
	Name() string
}

// Config describes one simulation run.
type Config struct {
	// LCLoad is the offered LC load per step, in units of one server's
	// guarded capacity. A value of NLC means the original fleet runs exactly
	// at the conversion threshold.
	LCLoad timeseries.Series
	// NLC and NBatch are the original server populations.
	NLC, NBatch int
	// NConv is the base conversion-server pool (fills placement headroom).
	NConv int
	// NThrottleConv is the extra conversion pool enabled by proactive
	// throttling (e_th in §4.2).
	NThrottleConv int
	// LCServer and BatchServer are the power models.
	LCServer, BatchServer ServerModel
	// Freq is the DVFS window for Batch servers.
	Freq DVFS
	// Budget is the power budget the whole population must fit under.
	Budget float64
	// Lconv is the guarded per-LC-server load threshold (learned from
	// history; see reshape.LearnThreshold).
	Lconv float64
	// QoSKnee is the per-server load above which QoS is violated.
	QoSKnee float64
	// ConvIdlePower is the draw of a parked conversion-pool server (deep
	// sleep while neither serving LC nor holding batch work — storage stays
	// available on the disaggregated storage nodes, so compute can sleep).
	// 0 means the batch server's idle draw (no sleep state).
	ConvIdlePower float64
	// BatchWorkCap bounds available batch work as a multiple of the
	// original Batch fleet's nominal rate (queue depth): total batch work
	// per step never exceeds BatchWorkCap × NBatch. Helpers beyond the
	// available work idle. 0 means unbounded. This models §5.2.2's DC3
	// finding: a small Batch tier limits how much extra batch work
	// conversion servers and boosting can actually perform.
	BatchWorkCap float64
	// Policy decides reshaping actions.
	Policy Policy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LCLoad.Empty() {
		return fmt.Errorf("%w: empty LC load", ErrModel)
	}
	if c.NLC <= 0 || c.NBatch < 0 || c.NConv < 0 || c.NThrottleConv < 0 {
		return fmt.Errorf("%w: bad populations", ErrModel)
	}
	if err := c.LCServer.Validate(); err != nil {
		return err
	}
	if err := c.BatchServer.Validate(); err != nil {
		return err
	}
	if err := c.Freq.Validate(); err != nil {
		return err
	}
	if c.Budget <= 0 {
		return fmt.Errorf("%w: budget must be positive", ErrModel)
	}
	if c.Lconv <= 0 || c.Lconv > 1 {
		return fmt.Errorf("%w: Lconv must be in (0,1]", ErrModel)
	}
	if c.QoSKnee <= 0 || c.QoSKnee > 1 {
		return fmt.Errorf("%w: QoSKnee must be in (0,1]", ErrModel)
	}
	if c.Policy == nil {
		return fmt.Errorf("%w: nil policy", ErrModel)
	}
	return nil
}

// Result aggregates a run.
type Result struct {
	// PerLCServerLoad is the per-active-LC-server load series (Fig. 12 top).
	PerLCServerLoad timeseries.Series
	// LCThroughput is served LC load per step (Fig. 12 bottom).
	LCThroughput timeseries.Series
	// BatchThroughput is Batch work per step in nominal-server units
	// (Fig. 12 middle).
	BatchThroughput timeseries.Series
	// Power is total draw per step.
	Power timeseries.Series
	// TotalLC and TotalBatch are summed throughputs.
	TotalLC, TotalBatch float64
	// DroppedLC is offered-but-unserved LC load.
	DroppedLC float64
	// QoSViolations counts steps where per-LC-server load exceeded QoSKnee.
	QoSViolations int
	// CapEvents counts steps where the capping backstop had to act.
	CapEvents int
	// OverBudgetSteps counts steps still over budget after capping (should
	// be zero; non-zero indicates the policy is unsafe).
	OverBudgetSteps int
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.LCLoad.Len()
	// The four result series share one backing slab (capped slices, so an
	// append on one can never spill into its neighbour): one allocation
	// instead of four, which matters when RunMany fans out thousands of
	// policy/config simulations.
	slab := make([]float64, 4*n)
	series := func(k int) timeseries.Series {
		return timeseries.Series{Start: cfg.LCLoad.Start, Step: cfg.LCLoad.Step, Values: slab[k*n : (k+1)*n : (k+1)*n]}
	}
	res := &Result{
		PerLCServerLoad: series(0),
		LCThroughput:    series(1),
		BatchThroughput: series(2),
		Power:           series(3),
	}
	convLC, batchFreq := 0, 1.0
	for i := 0; i < n; i++ {
		offered := cfg.LCLoad.Values[i]
		state := State{
			Step:              i,
			OfferedLoad:       offered,
			AvgLCLoadOriginal: offered / float64(cfg.NLC+convLC),
			ConvLC:            convLC,
			BatchFreq:         batchFreq,
		}
		act := cfg.Policy.Decide(state)
		act.ConvLC = clampInt(act.ConvLC, 0, cfg.NConv)
		act.ThrottleConvLC = clampInt(act.ThrottleConvLC, 0, cfg.NThrottleConv)
		act.BatchFreq = cfg.Freq.Clamp(act.BatchFreq)
		convLC = act.ConvLC
		batchFreq = act.BatchFreq

		// LC serving: offered load spreads over all LC-mode servers; each
		// server serves at most load 1.0 (QoS degrades past the knee).
		activeLC := cfg.NLC + act.ConvLC + act.ThrottleConvLC
		perServer := offered / float64(activeLC)
		served := offered
		if perServer > 1 {
			served = float64(activeLC)
			perServer = 1
		}
		if perServer > cfg.QoSKnee {
			res.QoSViolations++
		}

		// Batch work: original batch servers at the chosen frequency plus
		// base-pool conversion servers currently in Batch mode — the latter
		// bounded by available queued work. Boost is exempt from the cap:
		// it repays base work deferred by earlier throttling, it does not
		// consume extra queue. The throttle-enabled extra pool exists for
		// peak LC capacity and idles outside LC-heavy phases.
		convBatch := cfg.NConv - act.ConvLC
		idlePool := cfg.NThrottleConv - act.ThrottleConvLC
		activeConvBatch := convBatch
		if cfg.BatchWorkCap > 0 && cfg.NBatch > 0 {
			extraAvail := (cfg.BatchWorkCap - 1) * float64(cfg.NBatch)
			if extraAvail < 0 {
				extraAvail = 0
			}
			if float64(activeConvBatch) > extraAvail {
				// Small epsilon guards against float truncation (e.g.
				// (1.2−1)×20 = 3.999… must count as 4 slots).
				activeConvBatch = int(extraAvail + 1e-9)
			}
		}
		idleConvBatch := convBatch - activeConvBatch
		batchWork := float64(cfg.NBatch)*cfg.Freq.Throughput(batchFreq) + float64(activeConvBatch)

		// Power accounting.
		parkedPower := cfg.ConvIdlePower
		if parkedPower <= 0 {
			parkedPower = cfg.BatchServer.Power(0)
		}
		lcPower := float64(activeLC) * cfg.LCServer.Power(perServer)
		batchPower := float64(cfg.NBatch)*cfg.Freq.Power(cfg.BatchServer, batchFreq) +
			float64(activeConvBatch)*cfg.BatchServer.Power(1) +
			float64(idleConvBatch+idlePool)*parkedPower
		power := lcPower + batchPower

		// Capping backstop: if over budget, first clamp Batch to MinFreq,
		// then shed conversion-server Batch work, finally shed LC load.
		if power > cfg.Budget {
			res.CapEvents++
			over := power - cfg.Budget
			// 1. Throttle batch to the floor.
			floorPower := float64(cfg.NBatch) * cfg.Freq.Power(cfg.BatchServer, cfg.Freq.MinFreq)
			curBatchBase := float64(cfg.NBatch) * cfg.Freq.Power(cfg.BatchServer, batchFreq)
			saved := curBatchBase - floorPower
			if saved > 0 {
				if saved >= over {
					// Partial throttle proportional to the overage.
					frac := over / saved
					batchWork -= float64(cfg.NBatch) * (cfg.Freq.Throughput(batchFreq) - cfg.Freq.Throughput(cfg.Freq.MinFreq)) * frac
					power -= over
					over = 0
				} else {
					batchWork -= float64(cfg.NBatch) * (cfg.Freq.Throughput(batchFreq) - cfg.Freq.Throughput(cfg.Freq.MinFreq))
					power -= saved
					over -= saved
				}
			}
			// 2. Idle conversion-batch servers.
			if over > 0 && activeConvBatch > 0 {
				perConv := cfg.BatchServer.Power(1) - cfg.BatchServer.Power(0)
				need := int(over/perConv) + 1
				if need > activeConvBatch {
					need = activeConvBatch
				}
				batchWork -= float64(need)
				power -= float64(need) * perConv
				if over = power - cfg.Budget; over < 0 {
					over = 0
				}
			}
			// 3. Shed LC load (forced idleness).
			if over > 0 {
				perUnit := (cfg.LCServer.Peak - cfg.LCServer.Idle) / 1.0 // power per unit load on one server
				shed := over / perUnit
				if shed > served {
					shed = served
				}
				served -= shed
				power -= shed * perUnit
				perServer = served / float64(activeLC)
			}
			if power > cfg.Budget+1e-6 {
				res.OverBudgetSteps++
			}
		}

		res.PerLCServerLoad.Values[i] = perServer
		res.LCThroughput.Values[i] = served
		res.BatchThroughput.Values[i] = batchWork
		res.Power.Values[i] = power
		res.TotalLC += served
		res.TotalBatch += batchWork
		res.DroppedLC += offered - served
	}
	obsRuns.Inc()
	obsSteps.Add(uint64(n))
	obsQoSViolations.Add(uint64(res.QoSViolations))
	obsCapEvents.Add(uint64(res.CapEvents))
	return res, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Improvement summarises a policy run against a baseline run.
type Improvement struct {
	// LCPct and BatchPct are percentage throughput gains over the baseline.
	LCPct, BatchPct float64
}

// Compare computes throughput improvements of a run over a baseline run.
func Compare(baseline, run *Result) Improvement {
	imp := Improvement{}
	if baseline.TotalLC > 0 {
		imp.LCPct = 100 * (run.TotalLC - baseline.TotalLC) / baseline.TotalLC
	}
	if baseline.TotalBatch > 0 {
		imp.BatchPct = 100 * (run.TotalBatch - baseline.TotalBatch) / baseline.TotalBatch
	}
	return imp
}

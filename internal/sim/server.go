// Package sim is the discrete-time datacenter runtime used to evaluate
// dynamic power profile reshaping (§4, Fig. 12–14).
//
// The paper measures its reshaping policies on production serving stacks;
// this simulator is the substitution: per-step offered LC load drives
// utilization-linear server power models, a pluggable policy decides how
// storage-disaggregated conversion servers split between LC and Batch duty
// and how Batch DVFS is set, and the simulator accounts throughput, QoS and
// power against the datacenter budget with a capping backstop.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// ServerModel maps utilization to power draw. Power is linear in
// utilization between Idle and Peak — the standard first-order model for
// CPU-bound serving workloads.
type ServerModel struct {
	// Idle is the draw at zero utilization.
	Idle float64
	// Peak is the draw at full utilization and nominal frequency.
	Peak float64
}

// Validate checks the model.
func (m ServerModel) Validate() error {
	if m.Idle < 0 || m.Peak <= 0 || m.Peak < m.Idle {
		return fmt.Errorf("sim: invalid server model %+v", m)
	}
	return nil
}

// Power returns the draw at the given utilization (clamped to [0, 1]).
func (m ServerModel) Power(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return m.Idle + (m.Peak-m.Idle)*util
}

// DVFS models frequency scaling for Batch servers: relative frequency f
// multiplies throughput linearly while dynamic power scales ≈ f³ (voltage
// tracks frequency), the classic CMOS approximation.
type DVFS struct {
	// MinFreq and MaxFreq bound the relative frequency; nominal is 1.0.
	MinFreq, MaxFreq float64
}

// DefaultDVFS is a conventional ±20% scaling window.
var DefaultDVFS = DVFS{MinFreq: 0.6, MaxFreq: 1.2}

// Validate checks the DVFS window.
func (d DVFS) Validate() error {
	if d.MinFreq <= 0 || d.MaxFreq < d.MinFreq {
		return fmt.Errorf("sim: invalid DVFS window %+v", d)
	}
	return nil
}

// Clamp restricts f to the window.
func (d DVFS) Clamp(f float64) float64 {
	if f < d.MinFreq {
		return d.MinFreq
	}
	if f > d.MaxFreq {
		return d.MaxFreq
	}
	return f
}

// Power returns a batch server's draw at utilization 1 and relative
// frequency f under the given base model.
func (d DVFS) Power(m ServerModel, f float64) float64 {
	f = d.Clamp(f)
	return m.Idle + (m.Peak-m.Idle)*math.Pow(f, 3)
}

// Throughput returns the relative work rate at frequency f (1.0 = nominal).
func (d DVFS) Throughput(f float64) float64 {
	return d.Clamp(f)
}

// ErrModel is wrapped by configuration validation errors.
var ErrModel = errors.New("sim: invalid configuration")

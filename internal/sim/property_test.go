package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// randomPolicy takes arbitrary (bounded) actions each step — an adversarial
// policy for checking the simulator's physical invariants.
type randomPolicy struct{ rng *rand.Rand }

func (p *randomPolicy) Decide(State) Action {
	return Action{
		ConvLC:         p.rng.Intn(40) - 5, // may exceed pools / go negative
		ThrottleConvLC: p.rng.Intn(20) - 5,
		BatchFreq:      p.rng.Float64()*2 + 0.1,
	}
}
func (*randomPolicy) Name() string { return "random" }

// TestSimInvariantsUnderRandomPolicies drives the simulator with adversarial
// policies and asserts its physical invariants:
//   - served LC ≤ offered LC, and per-server load ∈ [0, 1];
//   - batch work ≥ 0 and bounded by fleet + helpers (work cap respected);
//   - power stays positive and, after capping, within budget whenever the
//     fleet's idle floor allows;
//   - throughput totals equal the series sums.
func TestSimInvariantsUnderRandomPolicies(t *testing.T) {
	base := time.Date(2016, 7, 25, 0, 0, 0, 0, time.UTC)
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(100) + 20
		load := timeseries.Zeros(base, 30*time.Minute, n)
		nLC := rng.Intn(80) + 20
		for i := range load.Values {
			load.Values[i] = rng.Float64() * float64(nLC) * 1.2
		}
		cfg := Config{
			LCLoad: load,
			NLC:    nLC, NBatch: rng.Intn(60), NConv: rng.Intn(20), NThrottleConv: rng.Intn(10),
			LCServer:    ServerModel{Idle: 90, Peak: 300},
			BatchServer: ServerModel{Idle: 140, Peak: 310},
			Freq:        DefaultDVFS,
			Budget:      float64(nLC)*300 + 60*310*1.3,
			Lconv:       0.85, QoSKnee: 0.9,
			BatchWorkCap: 1 + rng.Float64(),
			Policy:       &randomPolicy{rng: rand.New(rand.NewSource(int64(trial * 7)))},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var lcSum, batchSum float64
		maxBatch := float64(cfg.NBatch)*DefaultDVFS.MaxFreq + float64(cfg.NConv+cfg.NThrottleConv)
		for i := 0; i < n; i++ {
			if res.LCThroughput.Values[i] > load.Values[i]+1e-9 {
				t.Fatalf("trial %d: served > offered at %d", trial, i)
			}
			if v := res.PerLCServerLoad.Values[i]; v < 0 || v > 1+1e-9 {
				t.Fatalf("trial %d: per-server load %v", trial, v)
			}
			if v := res.BatchThroughput.Values[i]; v < -1e-9 || v > maxBatch+1e-9 {
				t.Fatalf("trial %d: batch work %v outside [0, %v]", trial, v, maxBatch)
			}
			if res.Power.Values[i] <= 0 {
				t.Fatalf("trial %d: non-positive power", trial)
			}
			lcSum += res.LCThroughput.Values[i]
			batchSum += res.BatchThroughput.Values[i]
		}
		if diff := lcSum - res.TotalLC; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: LC total mismatch", trial)
		}
		if diff := batchSum - res.TotalBatch; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: batch total mismatch", trial)
		}
		if res.OverBudgetSteps != 0 {
			t.Fatalf("trial %d: %d steps over budget despite capping", trial, res.OverBudgetSteps)
		}
		if res.DroppedLC < -1e-9 {
			t.Fatalf("trial %d: negative dropped load", trial)
		}
	}
}

// TestSimWorkCapRespected checks the batch queue bound directly.
func TestSimWorkCapRespected(t *testing.T) {
	base := time.Date(2016, 7, 25, 0, 0, 0, 0, time.UTC)
	cfg := Config{
		LCLoad: timeseries.Constant(base, time.Hour, 48, 10),
		NLC:    100, NBatch: 20, NConv: 30,
		LCServer:    ServerModel{Idle: 90, Peak: 300},
		BatchServer: ServerModel{Idle: 140, Peak: 310},
		Freq:        DefaultDVFS,
		Budget:      1e9,
		Lconv:       0.85, QoSKnee: 0.9,
		BatchWorkCap: 1.2,
		Policy:       fixedPolicy{Action{ConvLC: 0, BatchFreq: 1}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 30 helpers offered but queue allows only 0.2×20 = 4 extra.
	if got := res.BatchThroughput.Values[0]; got != 24 {
		t.Fatalf("capped batch work = %v, want 24", got)
	}
}

package sim

import (
	"testing"
	"time"
)

func BenchmarkRunWeek(b *testing.B) {
	cfg := baseConfig(13, 113*0.85, fixedPolicy{Action{ConvLC: 13, BatchFreq: 1}})
	cfg.LCLoad = diurnalLoad(7*24*6, 10*time.Minute, 113*0.85) // 10-minute week
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatencyReport(b *testing.B) {
	res, err := Run(baseConfig(0, 100*0.85, fixedPolicy{Action{BatchFreq: 1}}))
	if err != nil {
		b.Fatal(err)
	}
	m := LatencyModel{ServiceTimeMs: 2, SLAms: 92}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Latency(res, m); err != nil {
			b.Fatal(err)
		}
	}
}

package sim

import (
	"math"
	"testing"
)

func TestLatencyModelValidate(t *testing.T) {
	if err := (LatencyModel{ServiceTimeMs: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []LatencyModel{
		{ServiceTimeMs: 0},
		{ServiceTimeMs: 1, TailFactor: -1},
		{ServiceTimeMs: 1, SLAms: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("model %+v must be invalid", bad)
		}
	}
}

func TestLatencyCurveShape(t *testing.T) {
	m := LatencyModel{ServiceTimeMs: 2}
	if got := m.Mean(0); got != 2 {
		t.Fatalf("zero-load latency = %v", got)
	}
	if m.Mean(0.5) != 4 {
		t.Fatalf("ρ=0.5 latency = %v", m.Mean(0.5))
	}
	// Monotone and exploding near saturation, finite at/after 1.
	prev := 0.0
	for _, rho := range []float64{0, 0.3, 0.6, 0.8, 0.9, 0.95, 0.99, 1, 1.5} {
		v := m.Mean(rho)
		if v < prev {
			t.Fatalf("latency not monotone at ρ=%v", rho)
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("latency not finite at ρ=%v", rho)
		}
		prev = v
	}
	if m.Mean(-1) != 2 {
		t.Fatal("negative utilization must clamp to 0")
	}
	if m.P99(0.5) <= m.Mean(0.5) {
		t.Fatal("p99 proxy must exceed the mean")
	}
}

func TestMaxUtilizationDerivesKnee(t *testing.T) {
	// S=2ms, tail 4.6 → p99(ρ)=9.2/(1−ρ). SLA 92ms ⇒ ρmax = 0.9.
	m := LatencyModel{ServiceTimeMs: 2, SLAms: 92}
	if got := m.MaxUtilization(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("knee = %v, want 0.9", got)
	}
	if !m.MeetsSLA(0.89) || m.MeetsSLA(0.95) {
		t.Fatal("SLA check inconsistent with knee")
	}
	// Impossible SLA.
	tight := LatencyModel{ServiceTimeMs: 50, SLAms: 10}
	if tight.MaxUtilization() != 0 {
		t.Fatalf("impossible SLA knee = %v", tight.MaxUtilization())
	}
	// No SLA: everything passes.
	open := LatencyModel{ServiceTimeMs: 2}
	if open.MaxUtilization() != 1 || !open.MeetsSLA(0.999) {
		t.Fatal("no-SLA model must always pass")
	}
}

func TestLatencyReportFromRun(t *testing.T) {
	// Baseline run peaks at Lconv=0.85 < knee 0.9: no SLA violations.
	cfg := baseConfig(0, 100*0.85, fixedPolicy{Action{BatchFreq: 1}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := LatencyModel{ServiceTimeMs: 2, SLAms: 92}
	rep, err := Latency(res, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLAViolations != 0 {
		t.Fatalf("guarded run violated SLA %d times", rep.SLAViolations)
	}
	if rep.P99.Len() != res.PerLCServerLoad.Len() {
		t.Fatal("latency series length mismatch")
	}
	if rep.MeanMs <= m.ServiceTimeMs {
		t.Fatalf("mean latency %v must exceed service time", rep.MeanMs)
	}
	if rep.PeakP99Ms <= 0 || rep.PeakP99Ms > m.SLAms {
		t.Fatalf("peak p99 = %v", rep.PeakP99Ms)
	}

	// Overloaded run must violate.
	over, err := Run(baseConfig(0, 130, fixedPolicy{Action{BatchFreq: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Latency(over, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SLAViolations == 0 {
		t.Fatal("overload must violate the SLA")
	}
}

func TestLatencyErrors(t *testing.T) {
	if _, err := Latency(nil, LatencyModel{ServiceTimeMs: 1}); err == nil {
		t.Fatal("nil result must error")
	}
	res, err := Run(baseConfig(0, 50, fixedPolicy{Action{BatchFreq: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Latency(res, LatencyModel{}); err == nil {
		t.Fatal("invalid model must error")
	}
}

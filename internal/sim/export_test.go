package sim

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestResultWriteCSV(t *testing.T) {
	res, err := Run(baseConfig(0, 50, fixedPolicy{Action{BatchFreq: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != res.Power.Len()+1 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "timestamp" || records[0][4] != "power" {
		t.Fatalf("header: %v", records[0])
	}
	// Spot-check one row round-trips numerically.
	p, err := strconv.ParseFloat(records[1][4], 64)
	if err != nil || p != res.Power.Values[0] {
		t.Fatalf("power round trip: %v %v", p, err)
	}
	if !strings.HasPrefix(records[1][0], "2016-") {
		t.Fatalf("timestamp: %v", records[1][0])
	}
}

func TestResultWriteCSVEmpty(t *testing.T) {
	var r *Result
	if err := r.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("nil result must error")
	}
	if err := (&Result{}).WriteCSV(&bytes.Buffer{}); err == nil {
		t.Fatal("empty result must error")
	}
}

func TestResultSummary(t *testing.T) {
	res, err := Run(baseConfig(0, 50, fixedPolicy{Action{BatchFreq: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary("baseline")
	for _, want := range []string{"baseline", "LC served", "batch work", "power peak"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
}

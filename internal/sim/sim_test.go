package sim

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/timeseries"
)

var t0 = time.Date(2016, 7, 25, 0, 0, 0, 0, time.UTC)

func TestServerModel(t *testing.T) {
	m := ServerModel{Idle: 100, Peak: 300}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Power(0) != 100 || m.Power(1) != 300 || m.Power(0.5) != 200 {
		t.Fatal("linear power model broken")
	}
	if m.Power(-1) != 100 || m.Power(2) != 300 {
		t.Fatal("utilization must clamp")
	}
	for _, bad := range []ServerModel{{-1, 10}, {10, 5}, {0, 0}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("model %+v must be invalid", bad)
		}
	}
}

func TestDVFS(t *testing.T) {
	d := DefaultDVFS
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Clamp(0.1) != 0.6 || d.Clamp(2) != 1.2 || d.Clamp(1) != 1 {
		t.Fatal("clamp broken")
	}
	m := ServerModel{Idle: 100, Peak: 300}
	// Cubic dynamic power: throttling to 0.6 must save much more than 40%
	// of dynamic power.
	nominal := d.Power(m, 1)
	throttled := d.Power(m, 0.6)
	if nominal != 300 {
		t.Fatalf("nominal = %v", nominal)
	}
	wantDyn := 200 * math.Pow(0.6, 3)
	if math.Abs(throttled-(100+wantDyn)) > 1e-9 {
		t.Fatalf("throttled = %v", throttled)
	}
	if d.Throughput(0.6) != 0.6 {
		t.Fatal("throughput must be linear in frequency")
	}
	if err := (DVFS{MinFreq: 0, MaxFreq: 1}).Validate(); err == nil {
		t.Fatal("zero MinFreq must be invalid")
	}
}

// diurnalLoad renders a smooth day/night load curve peaking at peakLoad.
func diurnalLoad(n int, step time.Duration, peakLoad float64) timeseries.Series {
	s := timeseries.Zeros(t0, step, n)
	for i := 0; i < n; i++ {
		h := t0.Add(time.Duration(i) * step)
		hour := float64(h.Hour()) + float64(h.Minute())/60
		// Activity between 0.35 and 1.0, peaking at 15:00.
		d := math.Abs(hour - 15)
		if d > 12 {
			d = 24 - d
		}
		act := 0.35 + 0.65*math.Exp(-0.5*(d/4)*(d/4))
		s.Values[i] = act * peakLoad
	}
	return s
}

// fixedPolicy applies a constant action.
type fixedPolicy struct{ act Action }

func (p fixedPolicy) Decide(State) Action { return p.act }
func (fixedPolicy) Name() string          { return "fixed" }

func baseConfig(nConv int, peakLoad float64, policy Policy) Config {
	return Config{
		LCLoad: diurnalLoad(7*24, time.Hour, peakLoad),
		NLC:    100, NBatch: 50, NConv: nConv,
		LCServer:    ServerModel{Idle: 90, Peak: 300},
		BatchServer: ServerModel{Idle: 140, Peak: 310},
		Freq:        DefaultDVFS,
		Budget:      1e9, // effectively unconstrained
		Lconv:       0.85,
		QoSKnee:     0.9,
		Policy:      policy,
	}
}

func TestRunBaseline(t *testing.T) {
	// Original fleet at its design load: offered peak = NLC·Lconv.
	cfg := baseConfig(0, 100*0.85, fixedPolicy{Action{BatchFreq: 1}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QoSViolations != 0 {
		t.Fatalf("baseline QoS violations: %d", res.QoSViolations)
	}
	if res.DroppedLC > 1e-9 {
		t.Fatalf("baseline dropped load: %v", res.DroppedLC)
	}
	if res.CapEvents != 0 || res.OverBudgetSteps != 0 {
		t.Fatalf("unexpected capping: %+v", res)
	}
	// Batch work = NBatch per step.
	if math.Abs(res.BatchThroughput.Values[0]-50) > 1e-9 {
		t.Fatalf("batch throughput = %v", res.BatchThroughput.Values[0])
	}
	// Per-server load peaks at Lconv.
	if p := res.PerLCServerLoad.Peak(); math.Abs(p-0.85) > 0.01 {
		t.Fatalf("per-server peak load = %v", p)
	}
	if res.TotalLC <= 0 || res.Power.Min() <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunOverload(t *testing.T) {
	// Offered load beyond total capacity: load must be dropped, QoS violated.
	cfg := baseConfig(0, 130, fixedPolicy{Action{BatchFreq: 1}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedLC <= 0 {
		t.Fatal("overload must drop LC load")
	}
	if res.QoSViolations == 0 {
		t.Fatal("overload must violate QoS")
	}
	if res.PerLCServerLoad.Peak() > 1 {
		t.Fatal("per-server load cannot exceed 1")
	}
}

func TestRunConversionServersAddBatchWork(t *testing.T) {
	// Conversion pool pinned to Batch: batch throughput rises by the pool.
	cfg := baseConfig(13, 100*0.85, fixedPolicy{Action{ConvLC: 0, BatchFreq: 1}})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BatchThroughput.Values[0]-63) > 1e-9 {
		t.Fatalf("batch with conv pool = %v", res.BatchThroughput.Values[0])
	}
	// Pool pinned to LC instead: batch back to 50, LC load spread thinner.
	cfg2 := baseConfig(13, 100*0.85, fixedPolicy{Action{ConvLC: 13, BatchFreq: 1}})
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.BatchThroughput.Values[0]-50) > 1e-9 {
		t.Fatalf("batch with LC-pinned pool = %v", res2.BatchThroughput.Values[0])
	}
	if res2.PerLCServerLoad.Peak() >= res.PerLCServerLoad.Peak() {
		t.Fatal("LC-pinned pool must lower per-server load")
	}
}

func TestRunCappingBackstop(t *testing.T) {
	// Squeeze the budget below what full-tilt operation needs. The backstop
	// must keep every step within budget by throttling batch then shedding.
	cfg := baseConfig(0, 100*0.85, fixedPolicy{Action{BatchFreq: 1}})
	cfg.Budget = 36000 // ~100 LC servers near idle + 50 batch throttled
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapEvents == 0 {
		t.Fatal("tight budget must trigger capping")
	}
	if res.OverBudgetSteps != 0 {
		t.Fatalf("capping failed to keep power under budget on %d steps", res.OverBudgetSteps)
	}
	if res.Power.Peak() > cfg.Budget+1e-6 {
		t.Fatalf("power peak %v exceeds budget %v", res.Power.Peak(), cfg.Budget)
	}
}

func TestRunValidation(t *testing.T) {
	good := baseConfig(0, 50, fixedPolicy{})
	bads := []func(*Config){
		func(c *Config) { c.LCLoad = timeseries.Series{} },
		func(c *Config) { c.NLC = 0 },
		func(c *Config) { c.NConv = -1 },
		func(c *Config) { c.LCServer = ServerModel{Idle: -1, Peak: 1} },
		func(c *Config) { c.Budget = 0 },
		func(c *Config) { c.Lconv = 0 },
		func(c *Config) { c.Lconv = 1.5 },
		func(c *Config) { c.QoSKnee = 0 },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Freq = DVFS{MinFreq: -1, MaxFreq: 1} },
	}
	for i, mutate := range bads {
		c := good
		mutate(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestCompare(t *testing.T) {
	base := &Result{TotalLC: 100, TotalBatch: 50}
	run := &Result{TotalLC: 113, TotalBatch: 54}
	imp := Compare(base, run)
	if math.Abs(imp.LCPct-13) > 1e-9 || math.Abs(imp.BatchPct-8) > 1e-9 {
		t.Fatalf("improvement = %+v", imp)
	}
	zero := Compare(&Result{}, run)
	if zero.LCPct != 0 || zero.BatchPct != 0 {
		t.Fatal("zero baseline must yield zero improvement")
	}
}

func TestPolicyNameInReports(t *testing.T) {
	if !strings.Contains(fixedPolicy{}.Name(), "fixed") {
		t.Fatal("policy name")
	}
}

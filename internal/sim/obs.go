package sim

import "repro/internal/obs"

// Simulation metrics (see DESIGN.md "Observability"). Each Run updates them
// once on completion, so RunMany fan-outs accumulate the same totals at any
// worker count.
var (
	obsRuns = obs.Default().Counter("smoothop_sim_runs_total",
		"Completed simulation runs.")
	obsSteps = obs.Default().Counter("smoothop_sim_steps_total",
		"Simulation steps executed.")
	obsQoSViolations = obs.Default().Counter("smoothop_sim_qos_violations_total",
		"Steps where per-LC-server load exceeded the QoS knee.")
	obsCapEvents = obs.Default().Counter("smoothop_sim_cap_events_total",
		"Steps where the capping backstop had to act.")
)
